(* Tolerant loader for damaged trace files.

   Strategy: scan the framed container with resynchronization (a frame
   whose header is garbled or whose checksum fails is dropped; scanning
   resumes at the next line starting with "frame "), then rebuild a
   trace from whatever sections survived.  Rank streams are cut to their
   longest well-formed prefix; missing sections are reconstructed from
   redundant ones (nranks from the timing manifest or the rank-frame
   indices, the communicator table defaults to MPI_COMM_WORLD).  The
   result is a typed report — never an exception — unless nothing
   usable remains. *)

type rank_recovery = {
  rr_rank : int;
  rr_events : int;
  rr_events_lost : int option;
  rr_truncated : bool;
}

type report = {
  format_version : int;
  frames_seen : int;
  frames_dropped : int;
  ranks_missing : int list;
  per_rank : rank_recovery list;
  notes : string list;
}

type outcome = (Trace.t * report, string) result

let is_degraded r =
  r.frames_dropped > 0
  || r.ranks_missing <> []
  || List.exists (fun rr -> rr.rr_truncated) r.per_rank

let events_lost r =
  List.fold_left
    (fun acc rr ->
      match (acc, rr.rr_events_lost) with
      | Some a, Some l -> Some (a + l)
      | _ -> None)
    (Some 0) r.per_rank

let report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "salvage report (format v%d): %d/%d frames intact"
       r.format_version
       (r.frames_seen - r.frames_dropped)
       r.frames_seen);
  (match events_lost r with
  | Some 0 -> ()
  | Some n -> Buffer.add_string b (Printf.sprintf ", %d events lost" n)
  | None -> Buffer.add_string b ", events lost unknown");
  if r.ranks_missing <> [] then
    Buffer.add_string b
      (Printf.sprintf "\n  ranks missing entirely: %s"
         (String.concat "," (List.map string_of_int r.ranks_missing)));
  List.iter
    (fun rr ->
      if rr.rr_truncated then
        Buffer.add_string b
          (Printf.sprintf "\n  rank %d: %d events recovered%s%s" rr.rr_rank
             rr.rr_events
             (match rr.rr_events_lost with
             | Some l -> Printf.sprintf ", %d lost" l
             | None -> ", losses unknown")
             (if rr.rr_truncated then " (stream truncated)" else "")))
    r.per_rank;
  List.iter (fun n -> Buffer.add_string b ("\n  note: " ^ n)) r.notes;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Tolerant frame scan                                                  *)

(* Find the next plausible frame-header line at or after [pos]. *)
let resync text pos =
  let n = String.length text in
  let rec go p =
    if p >= n then None
    else
      match String.index_from_opt text p '\n' with
      | None -> None
      | Some nl ->
          if nl + 1 < n && n - (nl + 1) >= 6
             && String.sub text (nl + 1) 6 = "frame " then Some (nl + 1)
          else go (nl + 1)
  in
  if pos < n && n - pos >= 6 && String.sub text pos 6 = "frame " then Some pos
  else go pos

(* Scan all frames, skipping damage.  Returns the intact (kind, payload)
   list in order, the number of frames seen, the number dropped, and
   whether the end-of-trace terminator frame was reached (its absence
   means the file was cut off, even if every frame before the cut is
   intact). *)
let scan_tolerant text =
  let n = String.length text in
  let line_end pos =
    match String.index_from_opt text pos '\n' with Some i -> i | None -> n
  in
  let frames = ref [] and seen = ref 0 and dropped = ref 0 in
  let pos = ref (line_end 0 + 1) (* skip magic line *) in
  let finished = ref false in
  let terminated = ref false in
  while not !finished do
    match resync text !pos with
    | None -> finished := true
    | Some p -> (
        let e = line_end p in
        let header = String.sub text p (e - p) in
        match String.split_on_char ' ' header with
        | [ "frame"; "end"; "0"; _ ] ->
            terminated := true;
            finished := true
        | [ "frame"; kind; len_s; crc_s ] -> (
            incr seen;
            match (int_of_string_opt len_s, Util.Crc32.of_hex crc_s) with
            | Some len, Some crc when len >= 0 && e + 1 + len <= n ->
                let payload = String.sub text (e + 1) len in
                if Util.Crc32.string payload = crc then
                  frames := (kind, payload) :: !frames
                else incr dropped;
                (* the length told us where the next header starts even
                   when the payload is damaged *)
                pos := e + 1 + len + 1
            | Some len, Some _ when len >= 0 ->
                (* header intact but payload runs past end of file *)
                incr dropped;
                finished := true
            | _ ->
                (* garbled header: resync from the next line *)
                incr dropped;
                pos := e + 1)
        | _ ->
            (* a line that merely starts with "frame " *)
            incr dropped;
            pos := e + 1)
  done;
  (List.rev !frames, !seen, !dropped, !terminated)

(* ------------------------------------------------------------------ *)
(* Assembly from surviving frames                                       *)

let keep_known_comms ~comms nodes =
  let known = List.map fst comms in
  let dropped = ref 0 in
  let rec filter ns =
    List.filter_map
      (fun n ->
        match n with
        | Tnode.Leaf (e : Event.t) ->
            if List.mem e.comm known then Some n
            else (
              incr dropped;
              None)
        | Tnode.Loop { count; body; _ } -> (
            match filter body with
            | [] -> None
            | body' -> Some (Tnode.loop ~count body')))
      ns
  in
  let ns = filter nodes in
  (ns, !dropped)

let of_framed_tolerant ?path text =
  ignore path;
  let frames, seen, dropped, terminated = scan_tolerant text in
  (* A missing terminator is lost data even when every surviving frame is
     intact (e.g. a cut right before the timing frame): count it as one
     dropped frame so the report registers the damage. *)
  let seen, dropped = if terminated then (seen, dropped) else (seen + 1, dropped + 1) in
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  if not terminated then
    note "end-of-trace marker missing (file truncated?)";
  let find kind = List.assoc_opt kind frames in
  let timing =
    match find "timing" with
    | Some p -> Some (Trace_io.parse_timing_payload p)
    | None -> None
  in
  let rank_frames =
    List.filter_map
      (fun (kind, payload) ->
        match Trace_io.rank_of_kind kind with
        | Some r when r >= 0 -> Some (r, payload)
        | _ -> None)
      frames
  in
  (* nranks: header frame, else the timing manifest, else the highest
     surviving rank index. *)
  let nranks =
    match find "header" with
    | Some p -> (
        try Some (Trace_io.parse_header_payload p)
        with Trace_io.Format_error _ -> None)
    | None -> None
  in
  let nranks =
    match nranks with
    | Some k -> Some k
    | None -> (
        note "header frame lost; inferring rank count";
        match timing with
        | Some (_, per_rank) when per_rank <> [] ->
            Some (1 + List.fold_left (fun a (r, _) -> max a r) 0 per_rank)
        | _ -> (
            match rank_frames with
            | [] -> None
            | rf -> Some (1 + List.fold_left (fun a (r, _) -> max a r) 0 rf)))
  in
  match nranks with
  | None -> Error "unrecoverable: no header, timing, or rank frames survived"
  | Some nranks when nranks <= 0 -> Error "unrecoverable: invalid rank count"
  | Some nranks -> (
      let comms =
        match find "comms" with
        | Some p -> (
            try Trace_io.parse_comms_payload p
            with Trace_io.Format_error _ ->
              note "comms frame unreadable; assuming MPI_COMM_WORLD only";
              [ (0, Util.Rank_set.all nranks) ])
        | None ->
            note "comms frame lost; assuming MPI_COMM_WORLD only";
            [ (0, Util.Rank_set.all nranks) ]
      in
      let expected_for r =
        match timing with
        | Some (_, per_rank) -> List.assoc_opt r per_rank
        | None -> None
      in
      let ranks_missing = ref [] in
      let per_rank = ref [] in
      let streams =
        Array.init nranks (fun r ->
            match List.assoc_opt (Printf.sprintf "rank:%d" r) frames with
            | None ->
                ranks_missing := r :: !ranks_missing;
                per_rank :=
                  {
                    rr_rank = r;
                    rr_events = 0;
                    rr_events_lost = expected_for r;
                    rr_truncated = true;
                  }
                  :: !per_rank;
                []
            | Some payload ->
                let lines =
                  if String.trim payload = "" then []
                  else String.split_on_char '\n' payload
                in
                let nodes, truncated, err =
                  Trace_io.parse_nodes_prefix lines
                in
                (match err with
                | Some msg -> note "rank %d: %s" r msg
                | None -> ());
                let nodes, dropped_events = keep_known_comms ~comms nodes in
                if dropped_events > 0 then
                  note "rank %d: dropped %d events on unknown communicators"
                    r dropped_events;
                let events = Tnode.event_count nodes in
                let lost =
                  match expected_for r with
                  | Some expect -> Some (max 0 (expect - events))
                  | None -> if truncated then None else Some 0
                in
                per_rank :=
                  {
                    rr_rank = r;
                    rr_events = events;
                    rr_events_lost = lost;
                    rr_truncated = truncated || dropped_events > 0;
                  }
                  :: !per_rank;
                nodes)
      in
      if Array.for_all (fun s -> s = []) streams && dropped > 0 then
        Error "unrecoverable: no rank stream survived"
      else
        let trace = Trace_io.assemble ~nranks ~comms streams in
        Ok
          ( trace,
            {
              format_version = 2;
              frames_seen = seen;
              frames_dropped = dropped;
              ranks_missing = List.rev !ranks_missing;
              per_rank = List.rev !per_rank;
              notes = List.rev !notes;
            } ))

(* ------------------------------------------------------------------ *)
(* v1 salvage: longest parseable line prefix                            *)

let of_text_tolerant ?path text =
  ignore path;
  let lines = String.split_on_char '\n' text in
  match lines with
  | magic :: rest when String.trim magic = Trace_io.magic_v1 ->
      (* headers (nranks/comm) first; cut the body at the first bad line *)
      let nranks = ref 0 and comms = ref [] in
      let body = ref [] and header_lines = ref 0 and bad = ref None in
      (try
         List.iteri
           (fun i raw ->
             let lineno = i + 2 in
             let line = String.trim raw in
             if line = "" then ()
             else
               match String.split_on_char ' ' line with
               | "nranks" :: v :: [] when !body = [] -> (
                   incr header_lines;
                   match int_of_string_opt v with
                   | Some k -> nranks := k
                   | None ->
                       bad := Some (Printf.sprintf "line %d: bad nranks" lineno);
                       raise Exit)
               | "comm" :: id :: members :: [] when !body = [] -> (
                   incr header_lines;
                   match int_of_string_opt id with
                   | Some id -> (
                       try comms := (id, Trace_io.parse_ranks members) :: !comms
                       with Trace_io.Format_error _ ->
                         bad := Some (Printf.sprintf "line %d: bad comm" lineno);
                         raise Exit)
                   | None ->
                       bad := Some (Printf.sprintf "line %d: bad comm id" lineno);
                       raise Exit)
               | _ -> body := (lineno, line) :: !body)
           rest
       with Exit -> ());
      if !nranks <= 0 then
        Error "unrecoverable: v1 trace lost its nranks line"
      else
        let body_lines = List.rev_map snd !body in
        let nodes, truncated, err = Trace_io.parse_nodes_prefix body_lines in
        let comms =
          if !comms = [] then [ (0, Util.Rank_set.all !nranks) ]
          else List.rev !comms
        in
        let nodes, dropped_events = keep_known_comms ~comms nodes in
        let trace = Trace.make ~nranks:!nranks ~comms ~nodes in
        let notes =
          List.filter_map Fun.id
            [
              !bad;
              err;
              (if dropped_events > 0 then
                 Some
                   (Printf.sprintf "dropped %d events on unknown communicators"
                      dropped_events)
               else None);
            ]
        in
        let degraded = truncated || !bad <> None || dropped_events > 0 in
        Ok
          ( trace,
            {
              format_version = 1;
              frames_seen = 0;
              frames_dropped = 0;
              ranks_missing = [];
              per_rank =
                List.init !nranks (fun r ->
                    {
                      rr_rank = r;
                      rr_events = Tnode.event_count_for nodes ~rank:r;
                      rr_events_lost = (if degraded then None else Some 0);
                      rr_truncated = degraded;
                    });
              notes;
            } )
  | _ -> Error "unrecoverable: no recognizable trace magic"

let of_string ?path text : outcome =
  if Trace_io.is_framed text then of_framed_tolerant ?path text
  else of_text_tolerant ?path text

let load ~path : outcome =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> of_string ~path text
  | exception Sys_error msg -> Error (Printf.sprintf "io error: %s" msg)
