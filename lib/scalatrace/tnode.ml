type t = Leaf of Event.t | Loop of loop
and loop = { count : int; body : t list; l_len : int; l_hash : int }

let hash = function
  | Leaf e -> Event.hash e
  | Loop l -> Hashtbl.hash (l.count, l.l_hash)

let loop ~count body =
  let l_len, l_hash =
    List.fold_left (fun (n, h) node -> (n + 1, (h * 31) + hash node)) (0, 17) body
  in
  Loop { count; body; l_len; l_hash }

let rec equiv_gen leaf_eq a b =
  match (a, b) with
  | Leaf x, Leaf y -> leaf_eq x y
  | Loop la, Loop lb ->
      (* l_hash equality is necessary for equivalence (the hash covers only
         fields equivalence compares), so a mismatch rejects in O(1);
         l_len guards the for_all2. *)
      la.count = lb.count && la.l_len = lb.l_len && la.l_hash = lb.l_hash
      && List.for_all2 (equiv_gen leaf_eq) la.body lb.body
  | Leaf _, Loop _ | Loop _, Leaf _ -> false

let equiv a b = equiv_gen Event.mergeable a b

let equiv_ranks a b =
  let leaf_eq x y =
    Event.mergeable x y
    && Util.Rank_set.equal x.Event.ranks y.Event.ranks
    && x.Event.peer = y.Event.peer
  in
  equiv_gen leaf_eq a b

let rec absorb ~nranks ~into n =
  match (into, n) with
  | Leaf x, Leaf y -> Event.absorb ~nranks ~into:x y
  | Loop la, Loop lb -> List.iter2 (fun a b -> absorb ~nranks ~into:a b) la.body lb.body
  | _ -> invalid_arg "Tnode.absorb: structure mismatch"

let rec copy = function
  | Leaf e -> Leaf (Event.copy e)
  | Loop l -> Loop { l with body = List.map copy l.body }

let rec rsd_count_node = function
  | Leaf _ -> 1
  | Loop { body; _ } -> List.fold_left (fun acc n -> acc + rsd_count_node n) 0 body

let rsd_count nodes = List.fold_left (fun acc n -> acc + rsd_count_node n) 0 nodes

let rec event_count_node = function
  | Leaf e -> Util.Rank_set.cardinal e.Event.ranks
  | Loop { count; body; _ } ->
      count * List.fold_left (fun acc n -> acc + event_count_node n) 0 body

let event_count nodes = List.fold_left (fun acc n -> acc + event_count_node n) 0 nodes

let rec event_count_for_node ~rank = function
  | Leaf e -> if Util.Rank_set.mem rank e.Event.ranks then 1 else 0
  | Loop { count; body; _ } ->
      count
      * List.fold_left (fun acc n -> acc + event_count_for_node ~rank n) 0 body

let event_count_for nodes ~rank =
  List.fold_left (fun acc n -> acc + event_count_for_node ~rank n) 0 nodes

let rec project nodes ~rank =
  List.filter_map
    (fun n ->
      match n with
      | Leaf e -> if Util.Rank_set.mem rank e.Event.ranks then Some n else None
      | Loop { count; body; _ } -> (
          match project body ~rank with
          | [] -> None
          | body -> Some (loop ~count body)))
    nodes

let rec iter_leaves f nodes =
  List.iter
    (function Leaf e -> f e | Loop { body; _ } -> iter_leaves f body)
    nodes

let rec map_leaves f nodes =
  List.map
    (function
      | Leaf e -> Leaf (f e)
      | Loop { count; body; _ } -> loop ~count (map_leaves f body))
    nodes

let rec pp ppf = function
  | Leaf e -> Format.fprintf ppf "@[<h>RSD %a@]" Event.pp e
  | Loop { count; body; _ } ->
      Format.fprintf ppf "@[<v 2>PRSD x%d {@,%a@]@,}" count pp_body body

and pp_body ppf body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp ppf body

let pp_list ppf nodes = pp_body ppf nodes
