(** The ScalaTrace collection layer.

    A {!Mpisim.Hooks.t} client that records every MPI call of every rank
    into per-rank compressed traces (intra-rank loop compression happens
    on the fly), measures inter-call computation time, and captures the
    membership of every communicator created during the run.  At
    [MPI_Finalize] time — i.e., after {!Mpisim.Mpi.run} returns — call
    {!finish} to perform the inter-rank merge and obtain the global
    {!Trace.t}. *)

type t

val create : ?window:int -> nranks:int -> unit -> t

val hook : t -> Mpisim.Hooks.t

(** Per-rank compressed traces (chronological), before inter-rank merging. *)
val local_traces : t -> Tnode.t list array

(** Inter-rank merge (the work the paper's ScalaTrace does inside the
    [MPI_Finalize] wrapper): returns the global trace.  [?merge_impl]
    selects the {!Merge.impl}; per-rank traces are left untouched, so
    [finish] can run more than once (e.g. once per implementation for
    differential testing). *)
val finish : ?merge_impl:Merge.impl -> t -> Trace.t

(** [trace_run ?window ?net ~nranks program] — convenience: run [program]
    under the tracer and return the global trace together with the run
    outcome.  [?fault] and the watchdog budgets are forwarded to
    {!Mpisim.Mpi.run}, so applications can be traced under perturbed
    conditions and runaway programs abort with a diagnostic. *)
val trace_run :
  ?window:int ->
  ?merge_impl:Merge.impl ->
  ?net:Mpisim.Netmodel.t ->
  ?fault:Mpisim.Fault.t ->
  ?max_events:int ->
  ?max_virtual_time:float ->
  ?coll_alg:Mpisim.Coll_alg.t ->
  ?obs:Obs.Sink.t ->
  ?extra_hooks:Mpisim.Hooks.t list ->
  nranks:int ->
  (Mpisim.Mpi.ctx -> unit) ->
  Trace.t * Mpisim.Engine.outcome
