(** Tolerant loading of damaged trace files.

    Where {!Trace_io.load} is strict — one flipped byte and the whole
    file is rejected — this loader recovers everything the damage did
    not touch: frames with failing checksums are dropped, rank streams
    are cut to their longest well-formed prefix, lost sections are
    reconstructed from redundant ones, and the caller gets a typed
    {!report} of exactly what was recovered and what was lost.  Only
    when no usable content remains does it return [Error].

    Works on both formats: the framed v2 container (per-frame recovery)
    and the v1 line format (longest-prefix recovery). *)

type rank_recovery = {
  rr_rank : int;
  rr_events : int;  (** events recovered for this rank *)
  rr_events_lost : int option;
      (** events lost vs. the timing manifest; [None] when the manifest
          itself was lost *)
  rr_truncated : bool;  (** stream cut short or filtered *)
}

type report = {
  format_version : int;  (** 1 or 2 *)
  frames_seen : int;  (** v2 only; 0 for v1 *)
  frames_dropped : int;  (** checksum failures + garbled headers *)
  ranks_missing : int list;  (** ranks whose stream frame vanished *)
  per_rank : rank_recovery list;
  notes : string list;  (** human-readable recovery decisions *)
}

type outcome = (Trace.t * report, string) result

(** True when anything at all was lost (the trace differs from what was
    written). *)
val is_degraded : report -> bool

(** Total events lost across ranks; [None] if unknown for any rank. *)
val events_lost : report -> int option

val report_to_string : report -> string

val of_string : ?path:string -> string -> outcome
val load : path:string -> outcome
