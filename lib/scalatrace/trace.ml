type t = {
  nranks : int;
  comms : (int * Util.Rank_set.t) list;
  nodes : Tnode.t list;
}

let make ~nranks ~comms ~nodes =
  { nranks; comms = List.sort compare comms; nodes }

let nranks t = t.nranks
let nodes t = t.nodes
let comms t = t.comms

let comm_members t id = List.assoc id t.comms

let with_nodes t nodes = { t with nodes }

let rsd_count t = Tnode.rsd_count t.nodes
let event_count t = Tnode.event_count t.nodes

let project t ~rank = Tnode.project t.nodes ~rank

let has_wildcards t =
  let found = ref false in
  Tnode.iter_leaves
    (fun e -> match e.Event.peer with Event.P_any -> found := true | _ -> ())
    t.nodes;
  !found

let has_unaligned_collectives t =
  let found = ref false in
  Tnode.iter_leaves
    (fun e ->
      if Event.is_collective e.Event.kind && e.Event.kind <> Event.E_finalize
      then
        (* A partial-participant collective is complete when every rank of
           its declared participant set merged in — not the whole
           communicator. *)
        match e.Event.parts with
        | Some ps ->
            let expect =
              Array.fold_left
                (fun acc r -> Util.Rank_set.add r acc)
                Util.Rank_set.empty ps
            in
            if not (Util.Rank_set.equal e.Event.ranks expect) then found := true
        | None -> (
            match List.assoc_opt e.Event.comm t.comms with
            | Some members ->
                if not (Util.Rank_set.equal e.Event.ranks members) then
                  found := true
            | None -> ()))
    t.nodes;
  !found

let pp ppf t =
  Format.fprintf ppf "@[<v>trace: %d ranks, %d RSDs, %d events@," t.nranks
    (rsd_count t) (event_count t);
  List.iter
    (fun (id, members) ->
      Format.fprintf ppf "comm %d = %a@," id Util.Rank_set.pp members)
    t.comms;
  Format.fprintf ppf "%a@]" Tnode.pp_list t.nodes

let to_text t = Format.asprintf "%a" pp t

let text_size t = String.length (to_text t)
