type t = {
  nranks : int;
  compressors : Compress.t array;
  last_return : float array;
  mutable comms : (int * Util.Rank_set.t) list; (* comm id -> world members *)
}

let create ?window ~nranks () =
  {
    nranks;
    compressors = Array.init nranks (fun _ -> Compress.create ?window ~nranks ());
    last_return = Array.make nranks 0.;
    comms = [ (0, Util.Rank_set.all nranks) ];
  }

let on_enter t ~world_rank ~time (call : Mpisim.Call.t) =
  let time_gap = time -. t.last_return.(world_rank) in
  match Event.of_call ~world_rank ~time_gap call with
  | None -> ()
  | Some e -> Compress.push t.compressors.(world_rank) e

let on_return t ~world_rank ~time (call : Mpisim.Call.t) (v : Mpisim.Call.value) =
  (match call.op with
  | Compute _ | Wtime -> () (* gaps between MPI calls include local work *)
  | _ -> t.last_return.(world_rank) <- time);
  match v with
  | V_comm c ->
      let id = Mpisim.Comm.id c in
      if not (List.mem_assoc id t.comms) then
        t.comms <-
          (id, Util.Rank_set.of_list (Array.to_list (Mpisim.Comm.members c)))
          :: t.comms
  | V_unit | V_request _ | V_status _ | V_statuses _ | V_time _ -> ()

let hook t =
  {
    Mpisim.Hooks.nil with
    on_enter = (fun ~world_rank ~time call -> on_enter t ~world_rank ~time call);
    on_return =
      (fun ~world_rank ~time call v -> on_return t ~world_rank ~time call v);
  }

let local_traces t = Array.map Compress.contents t.compressors

let finish ?merge_impl t =
  let locals = local_traces t in
  let comms = List.sort compare t.comms in
  Merge.merge ?impl:merge_impl ~nranks:t.nranks ~comms locals

let trace_run ?window ?merge_impl ?net ?fault ?max_events ?max_virtual_time
    ?coll_alg ?obs ?(extra_hooks = []) ~nranks program =
  let t = create ?window ~nranks () in
  let outcome =
    Mpisim.Mpi.run ~hooks:(hook t :: extra_hooks) ?net ?fault ?max_events
      ?max_virtual_time ?coll_alg ?obs ~nranks program
  in
  (finish ?merge_impl t, outcome)
