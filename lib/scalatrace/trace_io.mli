(** Trace (de)serialization.

    Two on-disk formats:

    {b v1} — a line-oriented text format for saving compressed traces to
    disk and loading them back — the equivalent of ScalaTrace's trace
    files, which is what gets handed to the benchmark generator in the
    paper's workflow (Figure 1).  The format stores the full RSD/PRSD
    structure, communicator table, peers, sizes, tags, and the timing
    summaries (count/sum/min/max/first of each histogram; the bucket
    detail is dropped, which only affects quantile reconstruction, not
    the means that drive generation and replay).

    {b v2} — a framed container wrapping the same line vocabulary:
    length-prefixed sections (header / communicator table / one RSD
    stream per rank / timing manifest), each carrying a CRC-32 over its
    payload.  Corruption is localized to one frame, which is what the
    {!Salvage} loader exploits to recover everything else.  Rank streams
    are stored as singleton-participant projections with concrete peers
    (the tracer's own collection shape) and re-merged on load with the
    production {!Merge} path.

    [of_text (to_text t)] and [of_framed (to_framed t)] yield traces
    whose structure, projections, and timing means equal [t]'s. *)

exception Format_error of string
(** Parse failure; the message includes the offending line number, and
    the file path when the text came from a file. *)

val to_text : Trace.t -> string

val of_text : ?path:string -> string -> Trace.t
(** Parse the v1 line format.  [path], when given, prefixes error
    messages. *)

val to_framed : Trace.t -> string
(** Serialize to the framed v2 container. *)

val of_framed : ?path:string -> string -> Trace.t
(** Strict v2 parse: any malformed frame header, checksum mismatch,
    missing section, or manifest disagreement raises {!Format_error}.
    Use {!Salvage} for tolerant loading. *)

val of_string : ?path:string -> string -> Trace.t
(** Auto-detect the format by magic line and dispatch to {!of_text} or
    {!of_framed}. *)

val save : ?format:[ `V1 | `V2 ] -> Trace.t -> path:string -> unit
(** Write [trace] to [path]; defaults to the framed v2 format. *)

val load : path:string -> Trace.t
(** Read either format (auto-detected); errors carry [path].
    @raise Format_error on malformed input.
    @raise Sys_error on I/O failure. *)

(** {1 Building blocks exposed for the {!Salvage} loader}

    These are not a stable user-facing API; they exist so the tolerant
    loader shares one grammar with the strict one. *)

val magic_v1 : string
val magic_v2 : string

val is_framed : string -> bool
(** True when [text] starts with the v2 magic line. *)

val frame_header : kind:string -> payload:string -> string
(** The header line (sans newline) that introduces [payload]. *)

val parse_nodes : ?src:string -> ?lineno0:int -> string list -> Tnode.t list
(** Strict node-stream (loop/event/end lines) parser.
    @raise Format_error on any malformed line. *)

val parse_nodes_prefix :
  ?lineno0:int -> string list -> Tnode.t list * bool * string option
(** Longest well-formed prefix of a node stream: completed top-level
    nodes, whether the stream was cut short (parse error or unclosed
    loop), and the first error message if any.  Never raises. *)

val parse_header_payload : ?src:string -> string -> int
(** [nranks] from a header-frame payload. @raise Format_error if bad. *)

val parse_comms_payload :
  ?src:string -> string -> (int * Util.Rank_set.t) list
(** Communicator table from a comms-frame payload.
    @raise Format_error if bad. *)

val parse_timing_payload : string -> int option * (int * int) list
(** Best-effort read of a timing manifest: total event count (if
    present) and per-rank expected event counts.  Never raises. *)

val parse_ranks : ?src:string -> string -> Util.Rank_set.t
(** Parse a rank-interval list ("0:7:1,16:31:1").
    @raise Format_error if bad. *)

val rank_of_kind : string -> int option
(** [rank_of_kind "rank:3"] is [Some 3]; [None] for other kinds. *)

val assemble :
  ?src:string ->
  nranks:int ->
  comms:(int * Util.Rank_set.t) list ->
  Tnode.t list array ->
  Trace.t
(** Re-merge per-rank streams into a global trace (the load-time inverse
    of the per-rank narrowing done on save). *)
