type t = {
  window : int;
  nranks : int;
  foldable : Event.t -> bool;
  mutable rev : Tnode.t list; (* most recent node first *)
  mutable len : int; (* length of [rev], maintained incrementally *)
}

let create ?(window = 64) ?(foldable = fun _ -> true) ~nranks () =
  if window < 1 then invalid_arg "Compress.create: window < 1";
  { window; nranks; foldable; rev = []; len = 0 }

let rec all_foldable t = function
  | Tnode.Leaf e -> t.foldable e
  | Tnode.Loop { body; _ } -> List.for_all (all_foldable t) body

(* [split_at n l] = (first n elements, rest); callers guarantee
   [List.length l >= n] via the running [len]. *)
let split_at n l =
  let rec go acc n l =
    if n = 0 then (List.rev acc, l)
    else
      match l with
      | [] -> invalid_arg "Compress.split_at: list too short"
      | x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n l

(* Both sides always have the same length here; equiv_ranks itself is
   hash-prefiltered, so a mismatch costs one integer compare per node. *)
let equiv_lists a b = List.for_all2 Tnode.equiv_ranks a b

(* Rule A: the w nodes just appended repeat the body of the PRSD right
   before them -> bump its iteration count.  Precondition: len >= w + 1. *)
let try_extend t w =
  let tail_rev, rest = split_at w t.rev in
  match rest with
  | Tnode.Loop ({ body; l_len; _ } as l) :: older when l_len = w ->
      let tail = List.rev tail_rev in
      if equiv_lists body tail && List.for_all (all_foldable t) tail then begin
        List.iter2 (fun into n -> Tnode.absorb ~nranks:t.nranks ~into n) body tail;
        (* body unchanged structurally: reuse the cached l_len/l_hash *)
        t.rev <- Tnode.Loop { l with count = l.count + 1 } :: older;
        t.len <- t.len - w;
        true
      end
      else false
  | _ -> false

(* Rule B: the last 2w nodes are two equivalent halves -> new 2-iteration
   PRSD.  Precondition: len >= 2w. *)
let try_fold t w =
  let tail_rev, older = split_at (2 * w) t.rev in
  let newer_rev, earlier_rev = split_at w tail_rev in
  let newer = List.rev newer_rev and earlier = List.rev earlier_rev in
  if
    equiv_lists earlier newer
    && List.for_all (all_foldable t) earlier
    && List.for_all (all_foldable t) newer
  then begin
    List.iter2
      (fun into n -> Tnode.absorb ~nranks:t.nranks ~into n)
      earlier newer;
    t.rev <- Tnode.loop ~count:2 earlier :: older;
    t.len <- t.len - (2 * w) + 1;
    true
  end
  else false

let rec compress_tail t =
  let rec try_windows w =
    (* A window of w needs at least w+1 nodes (extend) resp. 2w (fold);
       past len-1 neither rule can apply. *)
    if w > t.window || w > t.len - 1 then false
    else if try_extend t w || (t.len >= 2 * w && try_fold t w) then true
    else try_windows (w + 1)
  in
  if try_windows 1 then compress_tail t

let push_node t n =
  t.rev <- n :: t.rev;
  t.len <- t.len + 1;
  compress_tail t

let push t e = push_node t (Tnode.Leaf e)

let contents t = List.rev t.rev

let compress_list ?window ?foldable ~nranks nodes =
  let t = create ?window ?foldable ~nranks () in
  List.iter (push_node t) nodes;
  contents t
