type t = {
  window : int;
  nranks : int;
  foldable : Event.t -> bool;
  pows : int array; (* 31^k, for the rolling-hash window filters *)
  mutable rev : Tnode.t list; (* most recent node first *)
  mutable len : int; (* length of [rev], maintained incrementally *)
  mutable s_nodes : Tnode.t array; (* scratch: newest nodes, index 0 = newest *)
  s_pref : int array; (* scratch: prefix sums of hash(k) * 31^k *)
}

let create ?(window = 64) ?(foldable = fun _ -> true) ~nranks () =
  if window < 1 then invalid_arg "Compress.create: window < 1";
  let m = (2 * window) + 1 in
  let pows = Array.make (m + 1) 1 in
  for k = 1 to m do
    pows.(k) <- pows.(k - 1) * 31
  done;
  {
    window;
    nranks;
    foldable;
    pows;
    rev = [];
    len = 0;
    s_nodes = [||]; (* sized lazily: Array.make needs a witness node *)
    s_pref = Array.make (m + 1) 0;
  }

let rec all_foldable t = function
  | Tnode.Leaf e -> t.foldable e
  | Tnode.Loop { body; _ } -> List.for_all (all_foldable t) body

(* [split_at n l] = (first n elements, rest); callers guarantee
   [List.length l >= n] via the running [len]. *)
let split_at n l =
  let rec go acc n l =
    if n = 0 then (List.rev acc, l)
    else
      match l with
      | [] -> invalid_arg "Compress.split_at: list too short"
      | x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n l

(* Both sides always have the same length here; equiv_ranks itself is
   hash-prefiltered, so a mismatch costs one integer compare per node. *)
let equiv_lists a b = List.for_all2 Tnode.equiv_ranks a b

(* Rule A: the w nodes just appended repeat the body of the PRSD right
   before them -> bump its iteration count.  Precondition: len >= w + 1. *)
let try_extend t w =
  let tail_rev, rest = split_at w t.rev in
  match rest with
  | Tnode.Loop ({ body; l_len; _ } as l) :: older when l_len = w ->
      let tail = List.rev tail_rev in
      if equiv_lists body tail && List.for_all (all_foldable t) tail then begin
        List.iter2 (fun into n -> Tnode.absorb ~nranks:t.nranks ~into n) body tail;
        (* body unchanged structurally: reuse the cached l_len/l_hash *)
        t.rev <- Tnode.Loop { l with count = l.count + 1 } :: older;
        t.len <- t.len - w;
        true
      end
      else false
  | _ -> false

(* Rule B: the last 2w nodes are two equivalent halves -> new 2-iteration
   PRSD.  Precondition: len >= 2w. *)
let try_fold t w =
  let tail_rev, older = split_at (2 * w) t.rev in
  let newer_rev, earlier_rev = split_at w tail_rev in
  let newer = List.rev newer_rev and earlier = List.rev earlier_rev in
  if
    equiv_lists earlier newer
    && List.for_all (all_foldable t) earlier
    && List.for_all (all_foldable t) newer
  then begin
    List.iter2
      (fun into n -> Tnode.absorb ~nranks:t.nranks ~into n)
      earlier newer;
    t.rev <- Tnode.loop ~count:2 earlier :: older;
    t.len <- t.len - (2 * w) + 1;
    true
  end
  else false

(* Filtered window scan.  The naive scan costs O(window^2) list walking
   per push even when nothing folds — superlinear on traces whose tails
   are long runs of distinct behaviours (the NPB MG cliff).  Instead the
   newest min(len, 2*window+1) nodes are snapshotted once per round into
   scratch arrays, and each candidate window runs an O(1) rolling-hash
   filter before the O(w) structural comparison:

   - extend at w requires rev.(w) to be a Loop of body length w whose
     [l_hash] equals [17*31^w + sum h(k)*31^k over k < w] — the same fold
     {!Tnode.loop} computed, so equal bodies imply equal values;
   - fold at w requires the newest w node hashes to equal the w before
     them elementwise, i.e. [pref(2w) - pref(w) = pref(w) * 31^w] over
     prefix sums of [h(k) * 31^k].

   [Tnode.equiv_ranks a b] implies [Tnode.hash a = Tnode.hash b] (the
   hashes cover only fields equivalence compares), so no filter ever
   rejects a window the full check would accept: output is byte-identical
   to the unfiltered scan, at O(window) per push instead of O(window^2). *)
let compress_tail t =
  if t.len > 1 then begin
    let m = (2 * t.window) + 1 in
    if Array.length t.s_nodes = 0 then t.s_nodes <- Array.make m (List.hd t.rev);
    let nodes = t.s_nodes and pref = t.s_pref and pows = t.pows in
    let rec round () =
      let limit = min t.len m in
      (let rec fill i l =
         if i < limit then
           match l with
           | x :: rest ->
               nodes.(i) <- x;
               fill (i + 1) rest
           | [] -> assert false
       in
       fill 0 t.rev);
      for i = 0 to limit - 1 do
        pref.(i + 1) <- pref.(i) + (Tnode.hash nodes.(i) * pows.(i))
      done;
      let extend_possible w =
        w < limit
        &&
        match nodes.(w) with
        | Tnode.Loop { l_len; l_hash; _ } ->
            l_len = w && l_hash = (17 * pows.(w)) + pref.(w)
        | Tnode.Leaf _ -> false
      in
      let fold_possible w = pref.(2 * w) - pref.(w) = pref.(w) * pows.(w) in
      let rec try_windows w =
        if w > t.window || w > t.len - 1 then false
        else if extend_possible w && try_extend t w then true
        else if t.len >= 2 * w && fold_possible w && try_fold t w then true
        else try_windows (w + 1)
      in
      if try_windows 1 then round ()
    in
    round ()
  end

let push_node t n =
  t.rev <- n :: t.rev;
  t.len <- t.len + 1;
  compress_tail t

let push t e = push_node t (Tnode.Leaf e)

let contents t = List.rev t.rev

let compress_list ?window ?foldable ~nranks nodes =
  let t = create ?window ?foldable ~nranks () in
  List.iter (push_node t) nodes;
  contents t
