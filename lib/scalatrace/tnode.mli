(** RSD/PRSD trace structure.

    A trace is a sequence of nodes: a [Leaf] is an RSD (one compressed
    event), a [Loop] is a PRSD — [count] repetitions of a nested sequence.
    Loops nest arbitrarily, mirroring source-code loop structure. *)

type t = Leaf of Event.t | Loop of loop

and loop = {
  count : int;
  body : t list;
  l_len : int;  (** cached [List.length body] *)
  l_hash : int;
      (** cached structural hash of [body] (count excluded); equivalent
          bodies hash equal, so unequal hashes reject in O(1) *)
}
(** Build [Loop] nodes with {!loop}, which computes the cached fields;
    construct the record directly only when reusing an existing node's
    [l_len]/[l_hash] for a structurally identical body (e.g. bumping
    [count]). *)

(** [loop ~count body] — a PRSD node with its cached length and hash. *)
val loop : count:int -> t list -> t

(** Structural hash consistent with {!equiv} and {!equiv_ranks}: equivalent
    nodes hash equal ([count] included at this level).  O(1) — leaves cache
    in the event, loops in [l_hash]. *)
val hash : t -> int

(** Structural equivalence: events must be {!Event.mergeable} and loop
    shapes identical (same counts, recursively equivalent bodies).
    Participant sets are ignored — this is the inter-rank merge's notion
    of compatibility.  Hash-prefiltered: mismatches reject on one integer
    compare per node. *)
val equiv : t -> t -> bool

(** Like {!equiv} but additionally requires equal participant sets and
    equal peers on every leaf.  Loop compression must use this: folding
    nodes with different participants would duplicate events in some
    ranks' projections, and folding same-rank events with different peers
    (e.g. a butterfly exchange) would corrupt the communication pattern. *)
val equiv_ranks : t -> t -> bool

(** [absorb ~nranks ~into n] merges timing/participants of [n] into [into];
    both sides must be [equiv]. *)
val absorb : nranks:int -> into:t -> t -> unit

val copy : t -> t

(** Number of RSDs (leaves) in a node list — the compressed size. *)
val rsd_count : t list -> int

(** Total MPI events represented after expanding loops, summed over all
    participating ranks. *)
val event_count : t list -> int

(** Events represented for one rank (loops expanded, nodes filtered by
    membership). *)
val event_count_for : t list -> rank:int -> int

(** [project nodes ~rank] — the subsequence visible to [rank]: nodes whose
    participant set contains it, loop bodies filtered recursively, empty
    loops dropped. *)
val project : t list -> rank:int -> t list

(** [iter_leaves f nodes] visits every leaf (without expanding loop
    counts). *)
val iter_leaves : (Event.t -> unit) -> t list -> unit

(** Map every leaf event (deep copy not implied; [f] may return the same
    event). *)
val map_leaves : (Event.t -> Event.t) -> t list -> t list

val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
