(** Inter-rank trace merging.

    Folds per-rank compressed traces into one global trace.  Ranks are
    merged in order; each node of an incoming rank trace is aligned
    greedily (bounded lookahead) against the global sequence, and
    compatible nodes are merged: participant sets union, per-rank peers
    accumulate and are generalized to relative ([rank+d]) or absolute
    forms afterwards.  The alignment preserves each rank's event order —
    the property Algorithms 1 and 2 depend on — while keeping the merged
    trace's size proportional to the number of *distinct behaviours*, not
    to the rank count. *)

type impl = [ `Indexed | `Reference ]
(** Alignment-scan implementation.  [`Indexed] (default) buckets
    unconsumed global nodes by structural hash so each incoming node
    probes only its equivalence candidates — O(distinct behaviours)
    instead of O(behaviours x lookahead).  [`Reference] is the original
    linear scan, kept as a differential-testing oracle; both produce
    byte-identical traces. *)

val merge :
  ?impl:impl ->
  ?lookahead:int ->
  nranks:int ->
  comms:(int * Util.Rank_set.t) list ->
  Tnode.t list array ->
  Trace.t

(** [merge_node_lists ~nranks segments] — the greedy alignment alone:
    merge several (per-rank) node lists into one, unioning compatible
    nodes.  Inputs are deep-copied; peers are left un-generalized. *)
val merge_node_lists :
  ?impl:impl -> ?lookahead:int -> nranks:int -> Tnode.t list list -> Tnode.t list
