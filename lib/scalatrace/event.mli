(** Trace events: one compressed record per MPI call instance.

    An event is the payload of an RSD.  During per-rank collection the
    participant set is a singleton and peers are absolute world ranks;
    inter-node merging (see {!Merge}) unions participant sets and
    generalizes peers to relative or per-rank forms, which is what keeps
    trace size sublinear in the rank count. *)

type peer =
  | P_none  (** no peer (waits, non-rooted collectives) *)
  | P_abs of int  (** constant world rank *)
  | P_rel of int  (** world rank [(self + d) mod nranks] *)
  | P_any  (** MPI_ANY_SOURCE *)
  | P_map of (int * int) list
      (** explicit per-rank peers [(world rank, world peer)], sorted *)

type kind =
  | E_send
  | E_isend
  | E_recv
  | E_irecv
  | E_wait
  | E_waitall of int  (** number of requests *)
  | E_barrier
  | E_bcast
  | E_reduce
  | E_allreduce
  | E_gather
  | E_gatherv
  | E_allgather
  | E_allgatherv
  | E_scatter
  | E_scatterv
  | E_alltoall
  | E_alltoallv
  | E_reduce_scatter
  | E_neighbor_alltoall  (** sparse exchange over a neighbor list *)
  | E_neighbor_allgather  (** sparse gather over a neighbor list *)
  | E_comm_split
  | E_comm_dup
  | E_finalize

type t = {
  site : Util.Callsite.t;
  kind : kind;
  mutable peer : peer;
  bytes : int;  (** canonical payload: p2p message size, per-rank collective
                    size, or total for v-collectives; per-neighbor size
                    for neighborhood collectives *)
  vec : int array option;
      (** exact per-rank sizes of v-collectives; for neighborhood
          collectives, the sorted relative neighbor offsets in
          participant-position space (identical on every rank of a
          stencil, which keeps RSD merging exact) *)
  tag : int;  (** p2p tag; [-1] encodes MPI_ANY_TAG; neighbor degree for
                  neighborhood collectives *)
  comm : int;  (** communicator id *)
  parts : int array option;
      (** declared participant set as sorted world ranks; [None] means
          the whole communicator (every pre-existing event, so old
          traces stay byte-identical on disk) *)
  dtime : Util.Histogram.t;  (** computation time preceding this event *)
  mutable ranks : Util.Rank_set.t;  (** participating world ranks *)
  mutable hcache : int;
      (** cached {!hash}; initialize to [0] (= not yet computed) when
          building records literally *)
}

(** [of_call ~world_rank ~time_gap call] converts an intercepted MPI call
    into a singleton event; [None] for pseudo-calls ([compute],
    [MPI_Wtime]). *)
val of_call : world_rank:int -> time_gap:float -> Mpisim.Call.t -> t option

(** Structural hash over exactly the fields {!mergeable} compares (cached
    in [hcache] after the first call — those fields never change once the
    event exists).  [mergeable a b] implies [hash a = hash b], so unequal
    hashes reject in O(1); never [0]. *)
val hash : t -> int

(** Structural compatibility for compression and merging: same call site,
    kind, sizes, tag, and communicator.  Peers, participant sets, and
    timing are excluded — they are merged, not compared.  Prefiltered by
    {!hash}, so the common non-match case is one integer compare. *)
val mergeable : t -> t -> bool

(** [absorb ~nranks ~into e] merges [e]'s timing, participants, and peer
    observations into [into].  Differing peers combine into [P_map] form;
    call {!generalize} afterwards to simplify. *)
val absorb : nranks:int -> into:t -> t -> unit

(** Simplify a [P_map] peer to [P_abs] or [P_rel] when uniform;
    [nranks] defines the modulus for relative peers. *)
val generalize : nranks:int -> t -> unit

(** [peer_of e ~rank ~nranks] resolves the concrete world peer for a
    participant, if determined. *)
val peer_of : t -> rank:int -> nranks:int -> int option

val is_collective : kind -> bool
val is_p2p : kind -> bool

(** MPI-style name, e.g. ["MPI_Irecv"]. *)
val kind_name : kind -> string

(** Deep copy (histogram and mutable fields included). *)
val copy : t -> t

val pp : Format.formatter -> t -> unit
