(* Merge one rank's node list into the global list.

   Greedy alignment: walk the incoming list; for each node, scan the
   not-yet-consumed part of the global list (up to [lookahead] nodes) for
   the first equivalent node; merge into it, emitting any skipped global
   nodes unchanged.  If none matches, the incoming node is inserted at the
   current position.  Both orders are preserved, so the per-rank
   projections of the result equal the inputs.

   Two implementations of that contract:

   - [`Reference]: the original linear scan — O(len(incoming) * lookahead)
     [Tnode.equiv] probes per rank, the cost cliff on traces with many
     distinct behaviours (NPB MG's 1382 RSDs).
   - [`Indexed] (default): bucket the unconsumed global nodes by
     structural hash, keyed by position.  [Tnode.equiv a b] implies
     [Tnode.hash a = Tnode.hash b] (the leaf hash covers exactly the
     fields [Event.mergeable] compares; the loop hash covers count and
     body hash, both required by equivalence), so scanning a node's hash
     bucket in ascending position order visits exactly the candidates the
     reference scan could accept, in the same order — the greedy,
     bounded-lookahead, order-preserving semantics are byte-identical
     while each probe costs O(1) expected. *)

type impl = [ `Indexed | `Reference ]

let merge_into_global_reference ~nranks ~lookahead global incoming =
  let rec find_match n candidates depth =
    match candidates with
    | [] -> None
    | g :: rest ->
        if Tnode.equiv g n then Some depth
        else if depth + 1 >= lookahead then None
        else find_match n rest (depth + 1)
  in
  let rec go acc global incoming =
    match incoming with
    | [] -> List.rev_append acc global
    | n :: in_rest -> (
        match find_match n global 0 with
        | Some depth ->
            (* consume global nodes up to and including the match *)
            let rec consume acc global d =
              match (global, d) with
              | g :: g_rest, 0 ->
                  Tnode.absorb ~nranks ~into:g n;
                  (g :: acc, g_rest)
              | g :: g_rest, d -> consume (g :: acc) g_rest (d - 1)
              | [], _ -> assert false
            in
            let acc, g_rest = consume acc global depth in
            go acc g_rest in_rest
        | None -> go (n :: acc) global in_rest)
  in
  go [] global incoming

let merge_into_global_indexed ~nranks ~lookahead global incoming =
  let g = Array.of_list global in
  let glen = Array.length g in
  (* hash -> unconsumed positions, ascending.  Consumption is a strict
     prefix (the cursor below), so stale entries are dropped lazily. *)
  let index : (int, int list) Hashtbl.t = Hashtbl.create (2 * glen) in
  for i = glen - 1 downto 0 do
    let h = Tnode.hash g.(i) in
    Hashtbl.replace index h
      (i :: (match Hashtbl.find_opt index h with Some l -> l | None -> []))
  done;
  let cursor = ref 0 in
  let out = ref [] in
  (* first unconsumed equivalent of [n] within the lookahead window *)
  let find_match n =
    let h = Tnode.hash n in
    match Hashtbl.find_opt index h with
    | None -> None
    | Some positions ->
        let rec skip_consumed = function
          | p :: rest when p < !cursor -> skip_consumed rest
          | live -> live
        in
        let live = skip_consumed positions in
        if live == positions then () else Hashtbl.replace index h live;
        let rec scan = function
          | [] -> None
          | p :: rest ->
              if p - !cursor >= lookahead then None
              else if Tnode.equiv g.(p) n then Some p
              else scan rest
        in
        scan live
  in
  List.iter
    (fun n ->
      match find_match n with
      | Some p ->
          (* emit skipped global nodes unchanged, then the merge target *)
          for i = !cursor to p - 1 do
            out := g.(i) :: !out
          done;
          Tnode.absorb ~nranks ~into:g.(p) n;
          out := g.(p) :: !out;
          cursor := p + 1
      | None -> out := n :: !out)
    incoming;
  for i = !cursor to glen - 1 do
    out := g.(i) :: !out
  done;
  List.rev !out

let merge_into_global ~impl ~nranks ~lookahead global incoming =
  match impl with
  | `Reference -> merge_into_global_reference ~nranks ~lookahead global incoming
  | `Indexed -> merge_into_global_indexed ~nranks ~lookahead global incoming

let merge_node_lists ?(impl = `Indexed) ?(lookahead = 256) ~nranks segments =
  List.fold_left
    (fun global seg ->
      merge_into_global ~impl ~nranks ~lookahead global (List.map Tnode.copy seg))
    [] segments

let merge ?(impl = `Indexed) ?(lookahead = 256) ~nranks ~comms locals =
  (* absorb mutates the nodes it merges, so each rank is deep-copied just
     before it is folded in — peak extra memory is one rank's working copy
     (plus whatever the copy contributed to the global), not a second copy
     of the whole per-rank trace array. *)
  let global =
    Array.fold_left
      (fun global local ->
        merge_into_global ~impl ~nranks ~lookahead global
          (List.map Tnode.copy local))
      [] locals
  in
  let global = Tnode.map_leaves (fun e -> Event.generalize ~nranks e; e) global in
  (* A final compression pass can fold rank-uniform structure that only
     becomes foldable after merging. *)
  let global = Compress.compress_list ~nranks global in
  Trace.make ~nranks ~comms ~nodes:global
