exception Format_error of string

(* All parse errors go through [fail]: "line N: ..." with an optional
   source (file path) prefix, so a failure inside a multi-file workflow
   names the offending file, not just the line. *)
let fail ?src line fmt =
  Printf.ksprintf
    (fun s ->
      let where =
        match src with
        | None -> Printf.sprintf "line %d" line
        | Some p -> Printf.sprintf "%s: line %d" p line
      in
      raise (Format_error (Printf.sprintf "%s: %s" where s)))
    fmt

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)

let kind_to_string (k : Event.kind) =
  match k with
  | Event.E_waitall n -> Printf.sprintf "MPI_Waitall:%d" n
  | k -> Event.kind_name k

let kind_of_string ?src line s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "MPI_Waitall" ->
      let n =
        try int_of_string (String.sub s (i + 1) (String.length s - i - 1))
        with Failure _ -> fail ?src line "bad waitall width in %S" s
      in
      Event.E_waitall n
  | _ -> (
      match s with
      | "MPI_Send" -> Event.E_send
      | "MPI_Isend" -> Event.E_isend
      | "MPI_Recv" -> Event.E_recv
      | "MPI_Irecv" -> Event.E_irecv
      | "MPI_Wait" -> Event.E_wait
      | "MPI_Barrier" -> Event.E_barrier
      | "MPI_Bcast" -> Event.E_bcast
      | "MPI_Reduce" -> Event.E_reduce
      | "MPI_Allreduce" -> Event.E_allreduce
      | "MPI_Gather" -> Event.E_gather
      | "MPI_Gatherv" -> Event.E_gatherv
      | "MPI_Allgather" -> Event.E_allgather
      | "MPI_Allgatherv" -> Event.E_allgatherv
      | "MPI_Scatter" -> Event.E_scatter
      | "MPI_Scatterv" -> Event.E_scatterv
      | "MPI_Alltoall" -> Event.E_alltoall
      | "MPI_Alltoallv" -> Event.E_alltoallv
      | "MPI_Reduce_scatter" -> Event.E_reduce_scatter
      | "MPI_Neighbor_alltoall" -> Event.E_neighbor_alltoall
      | "MPI_Neighbor_allgather" -> Event.E_neighbor_allgather
      | "MPI_Comm_split" -> Event.E_comm_split
      | "MPI_Comm_dup" -> Event.E_comm_dup
      | "MPI_Finalize" -> Event.E_finalize
      | s -> fail ?src line "unknown operation %S" s)

let peer_to_string (p : Event.peer) =
  match p with
  | Event.P_none -> "none"
  | Event.P_any -> "any"
  | Event.P_abs a -> Printf.sprintf "abs:%d" a
  | Event.P_rel d -> Printf.sprintf "rel:%d" d
  | Event.P_map m ->
      "map:"
      ^ String.concat ","
          (List.map (fun (r, p) -> Printf.sprintf "%d>%d" r p) m)

let peer_of_string ?src line s =
  let num tail = try int_of_string tail with Failure _ -> fail ?src line "bad peer %S" s in
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "none" -> Event.P_none
      | "any" -> Event.P_any
      | _ -> fail ?src line "bad peer %S" s)
  | Some i -> (
      let head = String.sub s 0 i
      and tail = String.sub s (i + 1) (String.length s - i - 1) in
      match head with
      | "abs" -> Event.P_abs (num tail)
      | "rel" -> Event.P_rel (num tail)
      | "map" ->
          let entries =
            if tail = "" then []
            else
              List.map
                (fun pair ->
                  match String.index_opt pair '>' with
                  | Some j ->
                      let r = String.sub pair 0 j in
                      let p = String.sub pair (j + 1) (String.length pair - j - 1) in
                      (num r, num p)
                  | None -> fail ?src line "bad peer map entry %S" pair)
                (String.split_on_char ',' tail)
          in
          Event.P_map entries
      | _ -> fail ?src line "bad peer %S" s)

let ranks_to_string set =
  String.concat ","
    (List.map
       (fun (first, last, stride) -> Printf.sprintf "%d:%d:%d" first last stride)
       (Util.Rank_set.intervals set))

let ranks_of_string ?src line s =
  if s = "" then Util.Rank_set.empty
  else
    List.fold_left
      (fun acc part ->
        match String.split_on_char ':' part with
        | [ f; l; st ] -> (
            try
              Util.Rank_set.union acc
                (Util.Rank_set.range ~stride:(int_of_string st) (int_of_string f)
                   (int_of_string l))
            with Failure _ | Invalid_argument _ -> fail ?src line "bad rank interval %S" part)
        | _ -> fail ?src line "bad rank interval %S" part)
      Util.Rank_set.empty (String.split_on_char ',' s)

let vec_to_string = function
  | None -> "-"
  | Some v -> String.concat "," (Array.to_list (Array.map string_of_int v))

let vec_of_string ?src line = function
  | "-" -> None
  | s -> (
      try Some (Array.of_list (List.map int_of_string (String.split_on_char ',' s)))
      with Failure _ -> fail ?src line "bad size vector %S" s)

let event_to_line (e : Event.t) =
  (* [parts=] is emitted only for partial participant sets, so every
     trace written before neighborhood collectives existed reproduces
     byte-identically. *)
  let parts_field =
    match e.parts with
    | None -> ""
    | Some ps -> " parts=" ^ vec_to_string (Some ps)
  in
  Printf.sprintf "event %s peer=%s bytes=%d vec=%s tag=%d comm=%d ranks=%s dt=%d;%.17g;%.17g;%.17g;%.17g%s site=%s"
    (kind_to_string e.kind) (peer_to_string e.peer) e.bytes (vec_to_string e.vec)
    e.tag e.comm (ranks_to_string e.ranks)
    (Util.Histogram.count e.dtime) (Util.Histogram.sum e.dtime)
    (Util.Histogram.min_value e.dtime) (Util.Histogram.max_value e.dtime)
    (Util.Histogram.first_sample e.dtime)
    parts_field
    (Util.Callsite.encode e.site)

let add_nodes buf depth ns =
  let rec go depth ns =
    List.iter
      (fun n ->
        let indent = String.make (2 * depth) ' ' in
        match n with
        | Tnode.Leaf e ->
            Buffer.add_string buf indent;
            Buffer.add_string buf (event_to_line e);
            Buffer.add_char buf '\n'
        | Tnode.Loop { count; body; _ } ->
            Buffer.add_string buf (Printf.sprintf "%sloop %d\n" indent count);
            go (depth + 1) body;
            Buffer.add_string buf (indent ^ "end\n"))
      ns
  in
  go depth ns

let to_text trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "scalatrace-trace 1\n";
  Buffer.add_string buf (Printf.sprintf "nranks %d\n" (Trace.nranks trace));
  List.iter
    (fun (id, members) ->
      Buffer.add_string buf (Printf.sprintf "comm %d %s\n" id (ranks_to_string members)))
    (Trace.comms trace);
  add_nodes buf 0 (Trace.nodes trace);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reading                                                              *)

(* "key=value" fields separated by single spaces; values contain no
   spaces except the trailing site=, which runs to end of line. *)
let parse_event ?src lineno rest =
  let site_marker = " site=" in
  let site_pos =
    let n = String.length rest and m = String.length site_marker in
    let rec go i =
      if i + m > n then fail ?src lineno "missing site field"
      else if String.sub rest i m = site_marker then i
      else go (i + 1)
    in
    go 0
  in
  let head = String.sub rest 0 site_pos in
  let site_str =
    String.sub rest
      (site_pos + String.length site_marker)
      (String.length rest - site_pos - String.length site_marker)
  in
  let site =
    try Util.Callsite.decode site_str
    with Invalid_argument _ -> fail ?src lineno "bad site %S" site_str
  in
  match String.split_on_char ' ' head with
  | kind_s :: fields ->
      let kind = kind_of_string ?src lineno kind_s in
      let get key =
        let prefix = key ^ "=" in
        match
          List.find_opt
            (fun f ->
              String.length f >= String.length prefix
              && String.sub f 0 (String.length prefix) = prefix)
            fields
        with
        | Some f ->
            String.sub f (String.length prefix) (String.length f - String.length prefix)
        | None -> fail ?src lineno "missing field %s" key
      in
      let get_opt key =
        let prefix = key ^ "=" in
        Option.map
          (fun f ->
            String.sub f (String.length prefix)
              (String.length f - String.length prefix))
          (List.find_opt
             (fun f ->
               String.length f >= String.length prefix
               && String.sub f 0 (String.length prefix) = prefix)
             fields)
      in
      let int_field key =
        try int_of_string (get key) with Failure _ -> fail ?src lineno "bad %s" key
      in
      let dt =
        match String.split_on_char ';' (get "dt") with
        | [ c; s; mn; mx; fs ] -> (
            try
              Util.Histogram.of_stats ~count:(int_of_string c)
                ~sum:(float_of_string s) ~min:(float_of_string mn)
                ~max:(float_of_string mx) ~first:(float_of_string fs)
            with Failure _ -> fail ?src lineno "bad dt field")
        | _ -> fail ?src lineno "bad dt field"
      in
      {
        Event.site;
        kind;
        peer = peer_of_string ?src lineno (get "peer");
        bytes = int_field "bytes";
        vec = vec_of_string ?src lineno (get "vec");
        tag = int_field "tag";
        comm = int_field "comm";
        parts =
          (match get_opt "parts" with
          | None -> None
          | Some s -> vec_of_string ?src lineno s);
        dtime = dt;
        ranks = ranks_of_string ?src lineno (get "ranks");
        hcache = 0;
      }
  | [] -> fail ?src lineno "empty event"

(* One step of the node-stream parser: feed a trimmed line into the open
   loop stack.  Shared by the strict parsers and the salvage loader. *)
type node_stack = (int * Tnode.t list ref) list ref

let fresh_stack () : node_stack = ref [ (0, ref []) ]

let stack_push_node (stack : node_stack) n =
  match !stack with
  | (_, body) :: _ -> body := n :: !body
  | [] -> assert false

let node_line_step ?src (stack : node_stack) lineno line =
  match String.index_opt line ' ' with
  | None when line = "end" -> (
      match !stack with
      | (count, body) :: rest when rest <> [] ->
          stack := rest;
          stack_push_node stack (Tnode.loop ~count (List.rev !body))
      | _ -> fail ?src lineno "unmatched end")
  | None -> fail ?src lineno "cannot parse %S" line
  | Some sp -> (
      let word = String.sub line 0 sp in
      let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
      match word with
      | "loop" ->
          let count =
            try int_of_string rest with Failure _ -> fail ?src lineno "bad loop count"
          in
          stack := (count, ref []) :: !stack
      | "event" -> stack_push_node stack (Tnode.Leaf (parse_event ?src lineno rest))
      | _ -> fail ?src lineno "unknown directive %S" word)

(* Completed top-level nodes of a (possibly still-open) stack: open loops
   are dropped wholesale — their counts and bodies are not trustworthy. *)
let stack_completed (stack : node_stack) =
  match List.rev !stack with
  | (_, top) :: _ -> List.rev !top
  | [] -> []

let stack_closed (stack : node_stack) = match !stack with [ _ ] -> true | _ -> false

(* Strict node-stream parser over [lines]; line numbers are offset by
   [lineno0] so errors point into the enclosing file. *)
let parse_nodes ?src ?(lineno0 = 0) lines =
  let stack = fresh_stack () in
  List.iteri
    (fun i raw ->
      let line = String.trim raw in
      if line <> "" then node_line_step ?src stack (lineno0 + i + 1) line)
    lines;
  if not (stack_closed stack) then
    fail ?src (lineno0 + List.length lines) "unterminated loop at end of input";
  stack_completed stack

(* Salvage variant: parse the longest well-formed prefix; never raises.
   Returns the completed nodes, whether the stream was cut short, and the
   first error (if any). *)
let parse_nodes_prefix ?(lineno0 = 0) lines =
  let stack = fresh_stack () in
  let error = ref None in
  (try
     List.iteri
       (fun i raw ->
         let line = String.trim raw in
         if line <> "" then
           try node_line_step stack (lineno0 + i + 1) line
           with Format_error msg ->
             error := Some msg;
             raise Exit)
       lines
   with Exit -> ());
  let truncated = !error <> None || not (stack_closed stack) in
  (stack_completed stack, truncated, !error)

let of_text ?path text =
  let src = path in
  let lines = String.split_on_char '\n' text in
  let nranks = ref 0 in
  let comms = ref [] in
  let stack = fresh_stack () in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim raw in
      if line = "" then ()
      else if lineno = 1 then begin
        if line <> "scalatrace-trace 1" then
          fail ?src lineno "not a scalatrace trace (bad magic %S)" line
      end
      else
        match String.index_opt line ' ' with
        | Some sp
          when (let w = String.sub line 0 sp in w = "nranks" || w = "comm") -> (
            let word = String.sub line 0 sp in
            let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
            match word with
            | "nranks" -> (
                try nranks := int_of_string rest
                with Failure _ -> fail ?src lineno "bad nranks")
            | _ -> (
                match String.split_on_char ' ' rest with
                | [ id; members ] -> (
                    try
                      comms :=
                        (int_of_string id, ranks_of_string ?src lineno members)
                        :: !comms
                    with Failure _ -> fail ?src lineno "bad comm id")
                | _ -> fail ?src lineno "bad comm line"))
        | _ -> node_line_step ?src stack lineno line)
    lines;
  if not (stack_closed stack) then
    raise
      (Format_error
         (match src with
         | None -> "unterminated loop at end of input"
         | Some p -> p ^ ": unterminated loop at end of input"));
  if !nranks <= 0 then
    raise
      (Format_error
         (match src with
         | None -> "missing or invalid nranks"
         | Some p -> p ^ ": missing or invalid nranks"));
  Trace.make ~nranks:!nranks ~comms:(List.rev !comms)
    ~nodes:(stack_completed stack)

(* ------------------------------------------------------------------ *)
(* Framed format v2                                                     *)

(* Container layout (text-friendly, binary-safe):

     scalatrace-frames 2\n
     frame <kind> <len> <crc32-hex8>\n
     <len payload bytes>\n
     ...
     frame end 0 00000000\n

   Kinds: [header] (nranks), [comms] (communicator table), [rank:<r>]
   (rank r's RSD stream, singleton participant sets, concrete peers,
   timing on the lowest participating rank only), [timing] (per-rank
   event-count manifest).  Each frame's CRC-32 covers exactly its
   payload bytes, so corruption is localized to one section: a flipped
   byte invalidates one frame, a truncation costs the tail — which is
   what lets {!Salvage} recover every intact section. *)

let magic_v1 = "scalatrace-trace 1"
let magic_v2 = "scalatrace-frames 2"

let frame_header ~kind ~payload =
  Printf.sprintf "frame %s %d %s" kind (String.length payload)
    (Util.Crc32.to_hex (Util.Crc32.string payload))

(* Rank [rank]'s serializable stream: its projection with participant
   sets narrowed to the singleton and generalized peers resolved to the
   concrete value — the same shape the tracer's per-rank collectors
   produce, which is what lets the loader re-merge streams with the
   production {!Merge} path.  Compute-time summaries ride on the lowest
   participating rank only ("owner"), so re-merging does not double-count
   timing. *)
let rank_stream trace ~rank =
  let nranks = Trace.nranks trace in
  Tnode.map_leaves
    (fun (e : Event.t) ->
      let owner = Util.Rank_set.min_elt e.ranks = Some rank in
      let e' = Event.copy e in
      e'.Event.ranks <- Util.Rank_set.singleton rank;
      (match e'.Event.peer with
      | Event.P_map _ | Event.P_rel _ -> (
          match Event.peer_of e ~rank ~nranks with
          | Some p -> e'.Event.peer <- Event.P_abs p
          | None -> e'.Event.peer <- Event.P_none)
      | Event.P_none | Event.P_any | Event.P_abs _ -> ());
      if not owner then
        { e' with Event.dtime = Util.Histogram.create (); hcache = 0 }
      else e')
    (Trace.project trace ~rank)

let to_framed trace =
  let buf = Buffer.create 8192 in
  let frame kind payload =
    Buffer.add_string buf (frame_header ~kind ~payload);
    Buffer.add_char buf '\n';
    Buffer.add_string buf payload;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf magic_v2;
  Buffer.add_char buf '\n';
  let nranks = Trace.nranks trace in
  frame "header" (Printf.sprintf "nranks %d" nranks);
  frame "comms"
    (String.concat "\n"
       (List.map
          (fun (id, members) ->
            Printf.sprintf "comm %d %s" id (ranks_to_string members))
          (Trace.comms trace)));
  let manifest = Buffer.create 256 in
  Buffer.add_string manifest
    (Printf.sprintf "events %d" (Trace.event_count trace));
  for rank = 0 to nranks - 1 do
    let stream = rank_stream trace ~rank in
    let b = Buffer.create 1024 in
    add_nodes b 0 stream;
    (* payloads carry no trailing newline; the container adds the separator *)
    let payload =
      let s = Buffer.contents b in
      let n = String.length s in
      if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s
    in
    frame (Printf.sprintf "rank:%d" rank) payload;
    Buffer.add_string manifest
      (Printf.sprintf "\nrank %d %d" rank (Tnode.event_count stream))
  done;
  frame "timing" (Buffer.contents manifest);
  Buffer.add_string buf "frame end 0 00000000\n";
  Buffer.contents buf

let is_framed text =
  String.length text >= String.length magic_v2
  && String.sub text 0 (String.length magic_v2) = magic_v2

(* Exact (strict) frame scan: any malformation raises. *)
let scan_frames_strict ?src text =
  let n = String.length text in
  let line_end pos = match String.index_from_opt text pos '\n' with
    | Some i -> i
    | None -> n
  in
  (* line numbers are only approximate bookkeeping for error messages *)
  let lineno = ref 1 in
  let pos = ref (line_end 0 + 1) in
  incr lineno;
  let frames = ref [] in
  let finished = ref false in
  while not !finished do
    if !pos >= n then fail ?src !lineno "missing end frame";
    let e = line_end !pos in
    let header = String.sub text !pos (e - !pos) in
    (match String.split_on_char ' ' header with
    | [ "frame"; "end"; "0"; _ ] ->
        finished := true;
        pos := e + 1
    | [ "frame"; kind; len_s; crc_s ] -> (
        match (int_of_string_opt len_s, Util.Crc32.of_hex crc_s) with
        | Some len, Some crc when len >= 0 && e + 1 + len <= n ->
            let payload = String.sub text (e + 1) len in
            if Util.Crc32.string payload <> crc then
              fail ?src !lineno "frame %s: checksum mismatch" kind;
            if e + 1 + len < n && text.[e + 1 + len] <> '\n' then
              fail ?src !lineno "frame %s: missing separator" kind;
            frames := (kind, payload) :: !frames;
            lineno := !lineno + 1
              + (List.length (String.split_on_char '\n' payload));
            pos := e + 1 + len + 1
        | Some _, Some _ -> fail ?src !lineno "frame %s: truncated payload" kind
        | _ -> fail ?src !lineno "bad frame header %S" header)
    | _ -> fail ?src !lineno "bad frame header %S" header)
  done;
  List.rev !frames

let parse_header_payload ?src payload =
  match String.split_on_char ' ' (String.trim payload) with
  | [ "nranks"; v ] -> (
      match int_of_string_opt v with
      | Some k when k > 0 -> k
      | _ -> fail ?src 1 "bad nranks in header frame")
  | _ -> fail ?src 1 "bad header frame"

let parse_comms_payload ?src payload =
  List.filter_map
    (fun raw ->
      let line = String.trim raw in
      if line = "" then None
      else
        match String.split_on_char ' ' line with
        | [ "comm"; id; members ] -> (
            match int_of_string_opt id with
            | Some id -> Some (id, ranks_of_string ?src 1 members)
            | None -> fail ?src 1 "bad comm id in comms frame")
        | _ -> fail ?src 1 "bad comms frame line %S" line)
    (String.split_on_char '\n' payload)

let parse_timing_payload payload =
  let events = ref None and per_rank = ref [] in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      match String.split_on_char ' ' line with
      | [ "events"; v ] -> events := int_of_string_opt v
      | [ "rank"; r; c ] -> (
          match (int_of_string_opt r, int_of_string_opt c) with
          | Some r, Some c -> per_rank := (r, c) :: !per_rank
          | _ -> ())
      | _ -> ())
    (String.split_on_char '\n' payload);
  (!events, List.rev !per_rank)

let parse_ranks ?src s = ranks_of_string ?src 0 s

let rank_of_kind kind =
  if String.length kind > 5 && String.sub kind 0 5 = "rank:" then
    int_of_string_opt (String.sub kind 5 (String.length kind - 5))
  else None

let assemble ?src ~nranks ~comms streams = ignore src; Merge.merge ~nranks ~comms streams

let of_framed ?path text =
  let src = path in
  if not (is_framed text) then
    fail ?src 1 "not a framed scalatrace trace (bad magic)";
  let frames = scan_frames_strict ?src text in
  let find kind = List.assoc_opt kind frames in
  let nranks =
    match find "header" with
    | Some p -> parse_header_payload ?src p
    | None -> fail ?src 1 "missing header frame"
  in
  let comms =
    match find "comms" with
    | Some p -> parse_comms_payload ?src p
    | None -> fail ?src 1 "missing comms frame"
  in
  let streams =
    Array.init nranks (fun r ->
        match find (Printf.sprintf "rank:%d" r) with
        | Some payload ->
            if String.trim payload = "" then []
            else parse_nodes ?src (String.split_on_char '\n' payload)
        | None -> fail ?src 1 "missing frame for rank %d" r)
  in
  let trace = assemble ?src ~nranks ~comms streams in
  (match find "timing" with
  | None -> fail ?src 1 "missing timing frame"
  | Some p ->
      let events, per_rank = parse_timing_payload p in
      (match events with
      | Some expect when expect <> Trace.event_count trace ->
          fail ?src 1 "event-count manifest mismatch (%d recorded, %d loaded)"
            expect (Trace.event_count trace)
      | _ -> ());
      List.iter
        (fun (r, expect) ->
          if r >= 0 && r < nranks then
            let got = Tnode.event_count_for (Trace.nodes trace) ~rank:r in
            if got <> expect then
              fail ?src 1
                "rank %d event-count manifest mismatch (%d recorded, %d loaded)"
                r expect got)
        per_rank);
  trace

(* ------------------------------------------------------------------ *)
(* Files                                                                *)

let of_string ?path text =
  if is_framed text then of_framed ?path text else of_text ?path text

let save ?(format = `V2) trace ~path =
  let text = match format with `V1 -> to_text trace | `V2 -> to_framed trace in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

let load ~path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  of_string ~path text
