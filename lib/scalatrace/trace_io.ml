exception Format_error of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Format_error (Printf.sprintf "line %d: %s" line s))) fmt

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)

let kind_to_string (k : Event.kind) =
  match k with
  | Event.E_waitall n -> Printf.sprintf "MPI_Waitall:%d" n
  | k -> Event.kind_name k

let kind_of_string line s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "MPI_Waitall" ->
      let n =
        try int_of_string (String.sub s (i + 1) (String.length s - i - 1))
        with Failure _ -> fail line "bad waitall width in %S" s
      in
      Event.E_waitall n
  | _ -> (
      match s with
      | "MPI_Send" -> Event.E_send
      | "MPI_Isend" -> Event.E_isend
      | "MPI_Recv" -> Event.E_recv
      | "MPI_Irecv" -> Event.E_irecv
      | "MPI_Wait" -> Event.E_wait
      | "MPI_Barrier" -> Event.E_barrier
      | "MPI_Bcast" -> Event.E_bcast
      | "MPI_Reduce" -> Event.E_reduce
      | "MPI_Allreduce" -> Event.E_allreduce
      | "MPI_Gather" -> Event.E_gather
      | "MPI_Gatherv" -> Event.E_gatherv
      | "MPI_Allgather" -> Event.E_allgather
      | "MPI_Allgatherv" -> Event.E_allgatherv
      | "MPI_Scatter" -> Event.E_scatter
      | "MPI_Scatterv" -> Event.E_scatterv
      | "MPI_Alltoall" -> Event.E_alltoall
      | "MPI_Alltoallv" -> Event.E_alltoallv
      | "MPI_Reduce_scatter" -> Event.E_reduce_scatter
      | "MPI_Comm_split" -> Event.E_comm_split
      | "MPI_Comm_dup" -> Event.E_comm_dup
      | "MPI_Finalize" -> Event.E_finalize
      | s -> fail line "unknown operation %S" s)

let peer_to_string (p : Event.peer) =
  match p with
  | Event.P_none -> "none"
  | Event.P_any -> "any"
  | Event.P_abs a -> Printf.sprintf "abs:%d" a
  | Event.P_rel d -> Printf.sprintf "rel:%d" d
  | Event.P_map m ->
      "map:"
      ^ String.concat ","
          (List.map (fun (r, p) -> Printf.sprintf "%d>%d" r p) m)

let peer_of_string line s =
  let num tail = try int_of_string tail with Failure _ -> fail line "bad peer %S" s in
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "none" -> Event.P_none
      | "any" -> Event.P_any
      | _ -> fail line "bad peer %S" s)
  | Some i -> (
      let head = String.sub s 0 i
      and tail = String.sub s (i + 1) (String.length s - i - 1) in
      match head with
      | "abs" -> Event.P_abs (num tail)
      | "rel" -> Event.P_rel (num tail)
      | "map" ->
          let entries =
            if tail = "" then []
            else
              List.map
                (fun pair ->
                  match String.index_opt pair '>' with
                  | Some j ->
                      let r = String.sub pair 0 j in
                      let p = String.sub pair (j + 1) (String.length pair - j - 1) in
                      (num r, num p)
                  | None -> fail line "bad peer map entry %S" pair)
                (String.split_on_char ',' tail)
          in
          Event.P_map entries
      | _ -> fail line "bad peer %S" s)

let ranks_to_string set =
  String.concat ","
    (List.map
       (fun (first, last, stride) -> Printf.sprintf "%d:%d:%d" first last stride)
       (Util.Rank_set.intervals set))

let ranks_of_string line s =
  if s = "" then Util.Rank_set.empty
  else
    List.fold_left
      (fun acc part ->
        match String.split_on_char ':' part with
        | [ f; l; st ] -> (
            try
              Util.Rank_set.union acc
                (Util.Rank_set.range ~stride:(int_of_string st) (int_of_string f)
                   (int_of_string l))
            with Failure _ | Invalid_argument _ -> fail line "bad rank interval %S" part)
        | _ -> fail line "bad rank interval %S" part)
      Util.Rank_set.empty (String.split_on_char ',' s)

let vec_to_string = function
  | None -> "-"
  | Some v -> String.concat "," (Array.to_list (Array.map string_of_int v))

let vec_of_string line = function
  | "-" -> None
  | s -> (
      try Some (Array.of_list (List.map int_of_string (String.split_on_char ',' s)))
      with Failure _ -> fail line "bad size vector %S" s)

let event_to_line (e : Event.t) =
  Printf.sprintf "event %s peer=%s bytes=%d vec=%s tag=%d comm=%d ranks=%s dt=%d;%.17g;%.17g;%.17g;%.17g site=%s"
    (kind_to_string e.kind) (peer_to_string e.peer) e.bytes (vec_to_string e.vec)
    e.tag e.comm (ranks_to_string e.ranks)
    (Util.Histogram.count e.dtime) (Util.Histogram.sum e.dtime)
    (Util.Histogram.min_value e.dtime) (Util.Histogram.max_value e.dtime)
    (Util.Histogram.first_sample e.dtime)
    (Util.Callsite.encode e.site)

let to_text trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "scalatrace-trace 1\n";
  Buffer.add_string buf (Printf.sprintf "nranks %d\n" (Trace.nranks trace));
  List.iter
    (fun (id, members) ->
      Buffer.add_string buf (Printf.sprintf "comm %d %s\n" id (ranks_to_string members)))
    (Trace.comms trace);
  let rec nodes depth ns =
    List.iter
      (fun n ->
        let indent = String.make (2 * depth) ' ' in
        match n with
        | Tnode.Leaf e ->
            Buffer.add_string buf indent;
            Buffer.add_string buf (event_to_line e);
            Buffer.add_char buf '\n'
        | Tnode.Loop { count; body; _ } ->
            Buffer.add_string buf (Printf.sprintf "%sloop %d\n" indent count);
            nodes (depth + 1) body;
            Buffer.add_string buf (indent ^ "end\n"))
      ns
  in
  nodes 0 (Trace.nodes trace);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reading                                                              *)

(* "key=value" fields separated by single spaces; values contain no
   spaces except the trailing site=, which runs to end of line. *)
let parse_event lineno rest =
  let site_marker = " site=" in
  let site_pos =
    let n = String.length rest and m = String.length site_marker in
    let rec go i =
      if i + m > n then fail lineno "missing site field"
      else if String.sub rest i m = site_marker then i
      else go (i + 1)
    in
    go 0
  in
  let head = String.sub rest 0 site_pos in
  let site_str =
    String.sub rest
      (site_pos + String.length site_marker)
      (String.length rest - site_pos - String.length site_marker)
  in
  let site =
    try Util.Callsite.decode site_str
    with Invalid_argument _ -> fail lineno "bad site %S" site_str
  in
  match String.split_on_char ' ' head with
  | kind_s :: fields ->
      let kind = kind_of_string lineno kind_s in
      let get key =
        let prefix = key ^ "=" in
        match
          List.find_opt
            (fun f ->
              String.length f >= String.length prefix
              && String.sub f 0 (String.length prefix) = prefix)
            fields
        with
        | Some f ->
            String.sub f (String.length prefix) (String.length f - String.length prefix)
        | None -> fail lineno "missing field %s" key
      in
      let int_field key =
        try int_of_string (get key) with Failure _ -> fail lineno "bad %s" key
      in
      let dt =
        match String.split_on_char ';' (get "dt") with
        | [ c; s; mn; mx; fs ] -> (
            try
              Util.Histogram.of_stats ~count:(int_of_string c)
                ~sum:(float_of_string s) ~min:(float_of_string mn)
                ~max:(float_of_string mx) ~first:(float_of_string fs)
            with Failure _ -> fail lineno "bad dt field")
        | _ -> fail lineno "bad dt field"
      in
      {
        Event.site;
        kind;
        peer = peer_of_string lineno (get "peer");
        bytes = int_field "bytes";
        vec = vec_of_string lineno (get "vec");
        tag = int_field "tag";
        comm = int_field "comm";
        dtime = dt;
        ranks = ranks_of_string lineno (get "ranks");
        hcache = 0;
      }
  | [] -> fail lineno "empty event"

let of_text text =
  let lines = String.split_on_char '\n' text in
  let nranks = ref 0 in
  let comms = ref [] in
  (* stack of (count, reversed body) for open loops; top-level at bottom *)
  let stack = ref [ (0, ref []) ] in
  let push_node n =
    match !stack with
    | (_, body) :: _ -> body := n :: !body
    | [] -> assert false
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim raw in
      if line = "" then ()
      else if lineno = 1 then begin
        if line <> "scalatrace-trace 1" then
          fail lineno "not a scalatrace trace (bad magic %S)" line
      end
      else
        match String.index_opt line ' ' with
        | None when line = "end" -> (
            match !stack with
            | (count, body) :: rest when rest <> [] ->
                stack := rest;
                push_node (Tnode.loop ~count (List.rev !body))
            | _ -> fail lineno "unmatched end")
        | None -> fail lineno "cannot parse %S" line
        | Some sp -> (
            let word = String.sub line 0 sp in
            let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
            match word with
            | "nranks" -> (
                try nranks := int_of_string rest
                with Failure _ -> fail lineno "bad nranks")
            | "comm" -> (
                match String.split_on_char ' ' rest with
                | [ id; members ] -> (
                    try comms := (int_of_string id, ranks_of_string lineno members) :: !comms
                    with Failure _ -> fail lineno "bad comm id")
                | _ -> fail lineno "bad comm line")
            | "loop" -> (
                let count =
                  try int_of_string rest with Failure _ -> fail lineno "bad loop count"
                in
                stack := (count, ref []) :: !stack)
            | "event" -> push_node (Tnode.Leaf (parse_event lineno rest))
            | _ -> fail lineno "unknown directive %S" word))
    lines;
  match !stack with
  | [ (_, body) ] ->
      if !nranks <= 0 then raise (Format_error "missing or invalid nranks");
      Trace.make ~nranks:!nranks ~comms:(List.rev !comms) ~nodes:(List.rev !body)
  | _ -> raise (Format_error "unterminated loop at end of input")

let save trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_text trace))

let load ~path =
  let text = In_channel.with_open_text path In_channel.input_all in
  of_text text
