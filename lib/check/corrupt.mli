(** Corruption-robustness campaigns over the framed trace format.

    Where {!Campaign} fuzzes the pipeline's semantics with random
    programs, this module fuzzes its ingestion with damaged trace files:
    each case takes a known-good framed (v2) trace from a registry
    application, applies a seeded mutation (bit flip, truncation at a
    random offset or at a frame boundary, whole-rank-frame ablation,
    garbled frame header), and checks the robustness contract:

    - no mutation may crash or hang the loader or the pipeline — every
      outcome must be typed (clean strict load, a {!Scalatrace.Salvage}
      report, or a typed {!Benchgen.Pipeline.gen_error});
    - under [`Best_effort] recovery, every salvaged trace with at least
      two surviving ranks must still yield a benchmark that parses and
      replays (bounded by a watchdog).

    All mutations are deterministic functions of the seed; a reported
    violation replays exactly. *)

type outcome_kind =
  | O_strict_ok  (** damage missed everything the strict loader checks *)
  | O_salvaged_generated  (** salvage + best-effort pipeline succeeded *)
  | O_salvaged_error of string  (** salvaged, but the pipeline refused *)
  | O_unrecoverable  (** the salvage loader itself gave up (typed) *)

type violation = {
  v_seed : int;  (** 0 for boundary-sweep cases *)
  v_app : string;
  v_mutation : string;  (** e.g. ["bit-flip@1234"], replayable *)
  v_what : string;  (** which contract clause broke, and how *)
}

type config = {
  seed_start : int;
  seeds : int;  (** number of random-mutation cases *)
  apps : string list;  (** registry apps to draw baselines from *)
  nranks : int;  (** requested rank count (fitted per app) *)
  sweep_boundaries : bool;
      (** additionally truncate each baseline at every frame boundary *)
  replay_max_events : int;  (** watchdog for the replay check *)
  log : string -> unit;  (** violation log line sink *)
}

(** 100 seeds over ring/stencil2d/butterfly/cg at 8 ranks, with the
    boundary sweep on. *)
val default : config

type summary = {
  cases : int;
  strict_ok : int;
  salvaged : int;  (** salvage loader recovered something *)
  unrecoverable : int;
  generated : int;  (** best-effort pipeline produced a benchmark *)
  replayed : int;  (** the benchmark also parsed and replayed *)
  violations : violation list;  (** empty = contract held everywhere *)
  metrics : Obs.Metrics.t;
      (** [corrupt.cases{outcome}] and [corrupt.violations] counters *)
}

val run : config -> summary
