(** Differential verification of collective algorithm schedules.

    Every {!Mpisim.Coll_alg} strategy must be {e semantically equivalent}
    to the [`Monolithic] reference: expanding a collective into rounds may
    move completion times, but never what was communicated.  This harness
    asserts that two ways:

    - {b registry sweep}: every registry application runs once under
      [`Monolithic] and once under each schedule strategy (plus [`Auto]),
      observed through the {!Oracle} collector; per-channel FIFO byte
      sequences and normalized collective participant multisets must
      match, and the raw count of {!Mpisim.Hooks.on_collective_complete}
      events must be identical (one per logical collective under every
      strategy);
    - {b generative sweep}: seeded {!Gen} programs go through the full
      3-way {!Oracle.check} under each strategy, so the whole
      trace → generate → replay pipeline is exercised per algorithm.

    Timing is reported, not asserted: per-algorithm virtual-elapsed
    ratios vs [`Monolithic] land in the summary metrics
    ([collalg.elapsed_ratio{alg=...}]), giving selection-tuning work a
    trajectory.  Everything is deterministic: same seeds, same apps, same
    result. *)

type violation = {
  v_case : string;  (** ["app:cg"] or ["seed:17"] — replayable *)
  v_alg : string;  (** the strategy that diverged ({!Mpisim.Coll_alg.name}) *)
  v_what : string;
}

type config = {
  seed_start : int;  (** first {!Gen} seed (inclusive) *)
  seeds : int;  (** number of consecutive {!Gen} seeds *)
  apps : string list;  (** registry apps to sweep (unknown names error) *)
  nranks : int;  (** requested rank count, fitted per app *)
  log : string -> unit;  (** progress/violation lines *)
}

(** 40 seeds from 1, the whole registry at 8 ranks, silent. *)
val default : config

type summary = {
  cases : int;  (** (case, algorithm) pairs checked *)
  apps_checked : int;
  gen_checked : int;  (** generative seeds checked *)
  violations : violation list;  (** empty = all strategies equivalent *)
  metrics : Obs.Metrics.t;
      (** [collalg.cases{alg}], [collalg.violations{alg}],
          [collalg.elapsed_ratio{alg}] (mean virtual-elapsed ratio vs
          [`Monolithic] over the registry sweep) *)
}

val run : config -> summary
