open Gen

type meta = { seed : int option; defect : string option; note : string option }

let no_meta = { seed = None; defect = None; note = None }

let magic = "# benchgen-check program v1"

(* One phase per line, space-separated positional fields.  The format is
   deliberately dumb: diffable in review, byte-stable under re-serialization
   (the shrinker-determinism test relies on that). *)
let phase_to_line = function
  | P_ring { offset; bytes } -> Printf.sprintf "phase ring %d %d" offset bytes
  | P_pairwise { bytes } -> Printf.sprintf "phase pairwise %d" bytes
  | P_fan_in { root; tag; bytes; any_tag } ->
      Printf.sprintf "phase fan_in %d %d %d %d" root tag bytes
        (if any_tag then 1 else 0)
  | P_coll { op; root; bytes; skewed } ->
      Printf.sprintf "phase coll %s %d %d %d" (coll_to_string op) root bytes
        (if skewed then 1 else 0)
  | P_sub_coll { parts; op; root; bytes } ->
      Printf.sprintf "phase sub_coll %d %s %d %d" parts (coll_to_string op)
        root bytes
  | P_neighbor { stride; degree; salt; stencil; gather; bytes } ->
      Printf.sprintf "phase neighbor %d %d %d %d %d %d" stride degree salt
        (if stencil then 1 else 0)
        (if gather then 1 else 0)
        bytes
  | P_compute { usecs } -> Printf.sprintf "phase compute %d" usecs

let to_string ?(meta = no_meta) (p : prog) =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" magic;
  Option.iter (fun s -> line "seed %d" s) meta.seed;
  Option.iter (fun d -> line "defect %s" d) meta.defect;
  Option.iter (fun n -> line "# %s" n) meta.note;
  line "nranks %d" p.nranks;
  line "reps %d" p.reps;
  List.iter (fun ph -> line "%s" (phase_to_line ph)) p.phases;
  Buffer.contents b

let parse_error fmt = Printf.ksprintf (fun m -> Error m) fmt

let bool_field ln = function
  | "0" -> Ok false
  | "1" -> Ok true
  | s -> parse_error "line %d: expected 0 or 1, got %S" ln s

let int_field ln s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> parse_error "line %d: expected an integer, got %S" ln s

let coll_field ln s =
  match coll_of_string s with
  | Some c -> Ok c
  | None -> parse_error "line %d: unknown collective %S" ln s

let ( let* ) = Result.bind

let phase_of_fields ln = function
  | [ "ring"; offset; bytes ] ->
      let* offset = int_field ln offset in
      let* bytes = int_field ln bytes in
      Ok (P_ring { offset; bytes })
  | [ "pairwise"; bytes ] ->
      let* bytes = int_field ln bytes in
      Ok (P_pairwise { bytes })
  | [ "fan_in"; root; tag; bytes; any_tag ] ->
      let* root = int_field ln root in
      let* tag = int_field ln tag in
      let* bytes = int_field ln bytes in
      let* any_tag = bool_field ln any_tag in
      Ok (P_fan_in { root; tag; bytes; any_tag })
  | [ "coll"; op; root; bytes; skewed ] ->
      let* op = coll_field ln op in
      let* root = int_field ln root in
      let* bytes = int_field ln bytes in
      let* skewed = bool_field ln skewed in
      Ok (P_coll { op; root; bytes; skewed })
  | [ "sub_coll"; parts; op; root; bytes ] ->
      let* parts = int_field ln parts in
      let* op = coll_field ln op in
      let* root = int_field ln root in
      let* bytes = int_field ln bytes in
      Ok (P_sub_coll { parts; op; root; bytes })
  | [ "neighbor"; stride; degree; salt; stencil; gather; bytes ] ->
      let* stride = int_field ln stride in
      let* degree = int_field ln degree in
      let* salt = int_field ln salt in
      let* stencil = bool_field ln stencil in
      let* gather = bool_field ln gather in
      let* bytes = int_field ln bytes in
      Ok (P_neighbor { stride; degree; salt; stencil; gather; bytes })
  | [ "compute"; usecs ] ->
      let* usecs = int_field ln usecs in
      Ok (P_compute { usecs })
  | kind :: _ -> parse_error "line %d: unknown phase kind %S" ln kind
  | [] -> parse_error "line %d: empty phase" ln

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let meta = ref no_meta in
  let nranks = ref None and reps = ref None in
  let phases = ref [] in
  let rec go = function
    | [] -> Ok ()
    | (_, l) :: tl when String.length l > 0 && l.[0] = '#' -> go tl
    | (ln, l) :: tl -> (
        match String.split_on_char ' ' l |> List.filter (( <> ) "") with
        | [ "seed"; s ] ->
            let* s = int_field ln s in
            meta := { !meta with seed = Some s };
            go tl
        | [ "defect"; d ] ->
            meta := { !meta with defect = Some d };
            go tl
        | [ "nranks"; n ] ->
            let* n = int_field ln n in
            nranks := Some n;
            go tl
        | [ "reps"; r ] ->
            let* r = int_field ln r in
            reps := Some r;
            go tl
        | "phase" :: fields ->
            let* ph = phase_of_fields ln fields in
            phases := ph :: !phases;
            go tl
        | _ -> parse_error "line %d: unrecognized line %S" ln l)
  in
  let* () = go lines in
  match (!nranks, !reps) with
  | None, _ -> Error "missing nranks"
  | _, None -> Error "missing reps"
  | Some nranks, Some reps ->
      let p = { nranks; reps; phases = List.rev !phases } in
      let* () = validate p in
      Ok (p, !meta)

let save ~path text =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let load ~path = In_channel.with_open_text path In_channel.input_all
