(** On-disk program format: seed corpus entries and counterexamples.

    A program serializes to a dumb line-based text file — one header line,
    optional [seed]/[defect] metadata, then one phase per line — so
    counterexamples are reviewable in a diff and byte-stable under
    re-serialization (the shrinker-determinism guarantee extends to the
    file).  [of_string] validates the parsed program ({!Gen.validate}),
    so a corpus file is always replayable. *)

type meta = { seed : int option; defect : string option; note : string option }

val no_meta : meta

(** First line of every file. *)
val magic : string

(** [note] is written as a comment; [seed] and [defect] round-trip. *)
val to_string : ?meta:meta -> Gen.prog -> string

val of_string : string -> (Gen.prog * meta, string) result

val save : path:string -> string -> unit

(** @raise Sys_error like [open_in]. *)
val load : path:string -> string
