open Mpisim

type coll =
  | C_barrier
  | C_bcast
  | C_reduce
  | C_allreduce
  | C_gather
  | C_gatherv
  | C_allgather
  | C_allgatherv
  | C_scatter
  | C_scatterv
  | C_alltoall
  | C_alltoallv
  | C_reduce_scatter

let all_colls =
  [
    C_barrier; C_bcast; C_reduce; C_allreduce; C_gather; C_gatherv;
    C_allgather; C_allgatherv; C_scatter; C_scatterv; C_alltoall;
    C_alltoallv; C_reduce_scatter;
  ]

let coll_to_string = function
  | C_barrier -> "barrier"
  | C_bcast -> "bcast"
  | C_reduce -> "reduce"
  | C_allreduce -> "allreduce"
  | C_gather -> "gather"
  | C_gatherv -> "gatherv"
  | C_allgather -> "allgather"
  | C_allgatherv -> "allgatherv"
  | C_scatter -> "scatter"
  | C_scatterv -> "scatterv"
  | C_alltoall -> "alltoall"
  | C_alltoallv -> "alltoallv"
  | C_reduce_scatter -> "reduce_scatter"

let coll_of_string s =
  List.find_opt (fun c -> coll_to_string c = s) all_colls

type phase =
  | P_ring of { offset : int; bytes : int }
  | P_pairwise of { bytes : int }
  | P_fan_in of { root : int; tag : int; bytes : int; any_tag : bool }
  | P_coll of { op : coll; root : int; bytes : int; skewed : bool }
  | P_sub_coll of { parts : int; op : coll; root : int; bytes : int }
  | P_neighbor of {
      stride : int;
      degree : int;
      salt : int;
      stencil : bool;
      gather : bool;
      bytes : int;
    }
  | P_compute of { usecs : int }

type prog = { nranks : int; reps : int; phases : phase list }

type mode = [ `Mixed | `Neighbor ]

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)

let max_nranks = 64

let validate (p : prog) =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if p.nranks < 2 || p.nranks > max_nranks then
    err "nranks %d outside [2, %d]" p.nranks max_nranks
  else if p.reps < 1 then err "reps %d < 1" p.reps
  else
    let fan_tags = ref [] in
    let check_phase i = function
      | P_ring { offset; bytes } ->
          if offset < 1 || offset >= p.nranks then
            err "phase %d: ring offset %d outside [1, %d]" i offset
              (p.nranks - 1)
          else if bytes < 1 then err "phase %d: ring bytes %d < 1" i bytes
          else Ok ()
      | P_pairwise { bytes } ->
          if bytes < 1 then err "phase %d: pairwise bytes %d < 1" i bytes
          else Ok ()
      | P_fan_in { root; tag; bytes; any_tag = _ } ->
          if root < 0 || root >= p.nranks then
            err "phase %d: fan_in root %d outside [0, %d)" i root p.nranks
          else if tag < 1 then
            (* tag 0 is the ring/pairwise channel; fan-in must not share it *)
            err "phase %d: fan_in tag %d < 1" i tag
          else if List.mem tag !fan_tags then
            err "phase %d: fan_in tag %d reused (matchings must be unique)" i
              tag
          else if bytes < 1 then err "phase %d: fan_in bytes %d < 1" i bytes
          else begin
            fan_tags := tag :: !fan_tags;
            Ok ()
          end
      | P_coll { op = _; root; bytes; skewed = _ } ->
          if root < 0 || root >= p.nranks then
            err "phase %d: coll root %d outside [0, %d)" i root p.nranks
          else if bytes < 1 then err "phase %d: coll bytes %d < 1" i bytes
          else Ok ()
      | P_sub_coll { parts; op = _; root; bytes } ->
          if parts < 1 then err "phase %d: sub_coll parts %d < 1" i parts
          else if parts >= 2 && 2 * parts > p.nranks then
            (* every split group must keep >= 2 members *)
            err "phase %d: sub_coll parts %d would leave a group of < 2 ranks"
              i parts
          else if root < 0 then err "phase %d: sub_coll root %d < 0" i root
          else if bytes < 1 then err "phase %d: sub_coll bytes %d < 1" i bytes
          else Ok ()
      | P_neighbor { stride; degree; salt; bytes; stencil = _; gather = _ } ->
          if stride < 1 then err "phase %d: neighbor stride %d < 1" i stride
          else if 2 * stride > p.nranks then
            (* the participant set (ranks divisible by stride) must keep
               >= 2 members, or the phase degenerates to a no-op *)
            err "phase %d: neighbor stride %d leaves < 2 participants" i
              stride
          else if degree < 1 then
            err "phase %d: neighbor degree %d < 1" i degree
          else if salt < 0 then err "phase %d: neighbor salt %d < 0" i salt
          else if bytes < 1 then err "phase %d: neighbor bytes %d < 1" i bytes
          else Ok ()
      | P_compute { usecs } ->
          if usecs < 1 then err "phase %d: compute usecs %d < 1" i usecs
          else Ok ()
    in
    let rec go i = function
      | [] -> Ok ()
      | ph :: tl -> (
          match check_phase i ph with Ok () -> go (i + 1) tl | e -> e)
    in
    go 0 p.phases

(* ------------------------------------------------------------------ *)
(* Interpretation: a prog is a deterministic SPMD application           *)

(* Synthetic call sites keyed by (phase index, role): stable across reps
   (so loop compression sees one site per static "source location") and
   distinct across phases (so Algorithm 1 sees distinct collective call
   sites). *)
let site idx role = Util.Callsite.synthetic (Printf.sprintf "check.p%d.%s" idx role)
let fin_site = Util.Callsite.synthetic "check.finalize"

let coll_call ~site ?comm (ctx : Mpi.ctx) op ~root ~bytes ~p =
  (* per-member variation in the vector collectives, deterministic in the
     member index so every rank passes the same arrays *)
  let vec salt = Array.init p (fun i -> bytes * (1 + ((i + salt) mod 3))) in
  match op with
  | C_barrier -> Mpi.barrier ~site ?comm ctx
  | C_bcast -> Mpi.bcast ~site ?comm ctx ~root ~bytes
  | C_reduce -> Mpi.reduce ~site ?comm ctx ~root ~bytes
  | C_allreduce -> Mpi.allreduce ~site ?comm ctx ~bytes
  | C_gather -> Mpi.gather ~site ?comm ctx ~root ~bytes_per_rank:bytes
  | C_gatherv -> Mpi.gatherv ~site ?comm ctx ~root ~bytes_from:(vec 0)
  | C_allgather -> Mpi.allgather ~site ?comm ctx ~bytes_per_rank:bytes
  | C_allgatherv -> Mpi.allgatherv ~site ?comm ctx ~bytes_from:(vec 1)
  | C_scatter -> Mpi.scatter ~site ?comm ctx ~root ~bytes_per_rank:bytes
  | C_scatterv -> Mpi.scatterv ~site ?comm ctx ~root ~bytes_to:(vec 2)
  | C_alltoall -> Mpi.alltoall ~site ?comm ctx ~bytes_per_pair:bytes
  | C_alltoallv -> Mpi.alltoallv ~site ?comm ctx ~bytes_to:(vec 0)
  | C_reduce_scatter -> Mpi.reduce_scatter ~site ?comm ctx ~bytes_per_rank:(vec 1)

let run_phase idx (ctx : Mpi.ctx) phase =
  let n = ctx.nranks in
  match phase with
  | P_ring { offset; bytes } ->
      (* concrete tag 0: an any-tag receive here could steal a fan-in
         message and make the program racy *)
      let r =
        Mpi.irecv ~site:(site idx "ring.recv") ~tag:(Call.Tag 0) ctx
          ~src:(Call.Rank ((ctx.rank + n - offset) mod n))
          ~bytes
      in
      let s =
        Mpi.isend ~site:(site idx "ring.send") ctx
          ~dst:((ctx.rank + offset) mod n)
          ~bytes
      in
      ignore (Mpi.waitall ~site:(site idx "ring.wait") ctx [ r; s ])
  | P_pairwise { bytes } ->
      (* disjoint pairs 2k <-> 2k+1; with odd n the last rank sits out *)
      let mate = if ctx.rank land 1 = 0 then ctx.rank + 1 else ctx.rank - 1 in
      if mate < n then
        ignore
          (Mpi.sendrecv ~site:(site idx "pair") ctx ~dst:mate ~send_bytes:bytes
             ~src:(Call.Rank mate) ~recv_bytes:bytes)
  | P_fan_in { root; tag; bytes; any_tag } ->
      (if ctx.rank = root then
         let tm = if any_tag then Call.Any_tag else Call.Tag tag in
         for _ = 2 to n do
           ignore
             (Mpi.recv ~site:(site idx "fan.recv") ~tag:tm ctx
                ~src:Call.Any_source ~bytes)
         done
       else begin
         (* rank-dependent skew decorrelates arrival order from rank order,
            so Algorithm 2 has real work to do *)
         Mpi.compute ctx (float_of_int (((ctx.rank * 7) mod n) + 1) *. 1e-6);
         Mpi.send ~site:(site idx "fan.send") ~tag ctx ~dst:root ~bytes
       end);
      (* an any-tag wildcard could steal messages from ranks already in
         the next phase; fence the phase so matchings stay unique *)
      if any_tag then Mpi.barrier ~site:(site idx "fan.fence") ctx
  | P_coll { op; root; bytes; skewed } ->
      (* [skewed] issues the same collective from two distinct call sites
         (by rank parity) — the misalignment Algorithm 1 must repair *)
      let s =
        if skewed && ctx.rank land 1 = 1 then site idx "coll.odd"
        else site idx "coll.even"
      in
      coll_call ~site:s ctx op ~root ~bytes ~p:n
  | P_sub_coll { parts; op; root; bytes } ->
      let c =
        if parts = 1 then Mpi.comm_dup ~site:(site idx "sub.dup") ctx
        else
          Mpi.comm_split ~site:(site idx "sub.split") ctx
            ~color:(ctx.rank * parts / n) ~key:ctx.rank
      in
      let p = Mpi.comm_size c in
      coll_call ~site:(site idx "sub.coll") ~comm:c ctx op ~root:(root mod p)
        ~bytes ~p
  | P_neighbor { stride; degree; salt; stencil; gather; bytes } ->
      (* Participants are the ranks divisible by [stride]; validation
         guarantees at least two.  Offsets live in participant-position
         space and are derived deterministically from (salt, position),
         so every participant can compute every other's neighbor list —
         the phase is collective-complete by construction and can never
         deadlock.  [stencil] makes the offsets position-independent (the
         isomorphic fast path); otherwise each participant draws its own
         (the random-topology slow path). *)
      if ctx.rank mod stride = 0 then begin
        let q = ((n - 1) / stride) + 1 in
        let parts = Array.init q (fun i -> i * stride) in
        let me = ctx.rank / stride in
        let off j =
          if stencil then 1 + ((salt + (5 * j)) mod (q - 1))
          else 1 + ((((salt + (7 * me) + (3 * j)) * 13) mod (q - 1)))
        in
        let neighbors =
          List.init (min degree (q - 1)) (fun j -> parts.((me + off j) mod q))
          |> List.sort_uniq compare |> Array.of_list
        in
        (* stride 1 means the whole communicator: exercise the implicit
           full-comm participant path rather than an explicit set *)
        let parts = if stride = 1 then [||] else parts in
        if gather then
          Mpi.neighbor_allgather ~site:(site idx "nbr.ag") ~parts ctx
            ~neighbors ~bytes
        else
          Mpi.neighbor_alltoall ~site:(site idx "nbr.a2a") ~parts ctx
            ~neighbors ~bytes_per_neighbor:bytes
      end
  | P_compute { usecs } -> Mpi.compute ctx (float_of_int usecs *. 1e-6)

let to_app (p : prog) (ctx : Mpi.ctx) =
  for _ = 1 to p.reps do
    List.iteri
      (fun idx ph ->
        run_phase idx ctx ph;
        Mpi.compute ctx 5e-6)
      p.phases
  done;
  Mpi.finalize ~site:fin_site ctx

(* ------------------------------------------------------------------ *)
(* Random generation                                                   *)

let gen_neighbor_phase ~nranks rng =
  P_neighbor
    {
      stride = 1 + Util.Rng.int rng (min 3 (nranks / 2));
      degree = 1 + Util.Rng.int rng 3;
      salt = Util.Rng.int rng 64;
      stencil = Util.Rng.int rng 2 = 0;
      gather = Util.Rng.int rng 2 = 0;
      bytes = 32 * (1 + Util.Rng.int rng 32);
    }

let gen_phase ?(mode = `Mixed) ~nranks ~idx rng =
  (* neighbor mode keeps the full regular vocabulary (the interesting
     failures are interactions) but biases half the draws to
     neighborhood phases; the mixed stream is byte-identical to what it
     was before neighbor phases existed *)
  if mode = `Neighbor && Util.Rng.int rng 2 = 0 then
    gen_neighbor_phase ~nranks rng
  else
  let bytes = 64 * (1 + Util.Rng.int rng 64) in
  match Util.Rng.int rng 10 with
  | 0 | 1 ->
      (* offset in [1, nranks-1]: never 0 (self-send) even at nranks = 2 *)
      P_ring { offset = 1 + Util.Rng.int rng (nranks - 1); bytes }
  | 2 -> P_pairwise { bytes }
  | 3 | 4 ->
      P_fan_in
        {
          root = Util.Rng.int rng nranks;
          tag = 100 + idx;
          bytes;
          any_tag = Util.Rng.int rng 4 = 0;
        }
  | 5 | 6 | 7 ->
      let op = List.nth all_colls (Util.Rng.int rng (List.length all_colls)) in
      P_coll
        {
          op;
          root = Util.Rng.int rng nranks;
          bytes;
          skewed = Util.Rng.int rng 3 = 0;
        }
  | 8 ->
      let op = List.nth all_colls (Util.Rng.int rng (List.length all_colls)) in
      let parts =
        (* split only when every group keeps >= 2 members; otherwise (or
           one time in four) duplicate the whole communicator instead *)
        if nranks < 4 || Util.Rng.int rng 4 = 0 then 1
        else 2 + Util.Rng.int rng ((nranks / 2) - 1)
      in
      P_sub_coll { parts; op; root = Util.Rng.int rng nranks; bytes }
  | _ -> P_compute { usecs = 1 + Util.Rng.int rng 20 }

let generate_with ~mode ~seed =
  let rng = Util.Rng.create ~seed in
  let nranks = 2 + Util.Rng.int rng 11 in
  let reps = 1 + Util.Rng.int rng 3 in
  let nphases = 1 + Util.Rng.int rng 7 in
  let phases = List.init nphases (fun idx -> gen_phase ~mode ~nranks ~idx rng) in
  { nranks; reps; phases }

let generate ~seed = generate_with ~mode:`Mixed ~seed

(* ------------------------------------------------------------------ *)

let pp_phase ppf = function
  | P_ring { offset; bytes } ->
      Format.fprintf ppf "ring offset=%d bytes=%d" offset bytes
  | P_pairwise { bytes } -> Format.fprintf ppf "pairwise bytes=%d" bytes
  | P_fan_in { root; tag; bytes; any_tag } ->
      Format.fprintf ppf "fan_in root=%d tag=%d bytes=%d any_tag=%b" root tag
        bytes any_tag
  | P_coll { op; root; bytes; skewed } ->
      Format.fprintf ppf "coll %s root=%d bytes=%d skewed=%b"
        (coll_to_string op) root bytes skewed
  | P_sub_coll { parts; op; root; bytes } ->
      Format.fprintf ppf "sub_coll parts=%d %s root=%d bytes=%d" parts
        (coll_to_string op) root bytes
  | P_neighbor { stride; degree; salt; stencil; gather; bytes } ->
      Format.fprintf ppf
        "neighbor stride=%d degree=%d salt=%d stencil=%b gather=%b bytes=%d"
        stride degree salt stencil gather bytes
  | P_compute { usecs } -> Format.fprintf ppf "compute usecs=%d" usecs

let pp ppf (p : prog) =
  Format.fprintf ppf "@[<v>nranks=%d reps=%d@," p.nranks p.reps;
  List.iteri (fun i ph -> Format.fprintf ppf "  %d: %a@," i pp_phase ph) p.phases;
  Format.fprintf ppf "@]"

let to_string p = Format.asprintf "%a" pp p
