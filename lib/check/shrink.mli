(** Greedy deterministic program shrinking.

    [minimize ~still_fails prog] repeatedly replaces [prog] with the
    first candidate successor (in a fixed order: drop a phase, drop
    repetitions, drop ranks, simplify one phase) for which [still_fails]
    holds, until no candidate fails.  Every candidate strictly decreases
    a lexicographic size measure, so shrinking terminates; because both
    the candidate order and the oracle are deterministic, the same
    failing program always minimizes to the same counterexample —
    byte-identical once serialized ({!Corpus}).

    [prog] itself is assumed to fail.  Every candidate satisfies
    {!Gen.validate} (rank-count reductions re-target roots and offsets).

    Returns the minimized program and the number of [still_fails]
    evaluations spent.  [max_steps] (default 500) bounds those
    evaluations as a backstop.  [should_stop] is polled before every
    [still_fails] evaluation (each one is a full pipeline run, so a
    campaign time budget must be able to interrupt mid-iteration);
    when it returns [true], shrinking stops and the best program found
    so far is returned.  With the default ([fun () -> false]) the
    result is fully deterministic. *)
val minimize :
  ?max_steps:int ->
  ?should_stop:(unit -> bool) ->
  still_fails:(Gen.prog -> bool) ->
  Gen.prog ->
  Gen.prog * int
