open Gen

(* Strictly decreasing size measure: every candidate move reduces this
   lexicographic tuple, so greedy shrinking terminates without a step
   budget (one is kept anyway as a backstop). *)
let phase_weight = function
  | P_sub_coll _ -> 3
  | P_fan_in { any_tag = true; _ } -> 3
  | P_fan_in { any_tag = false; _ } -> 2
  | P_coll { skewed = true; _ } -> 2
  | P_coll { skewed = false; _ } -> 1
  | P_ring _ | P_pairwise _ -> 1
  (* degree folded in so reducing it is a strictly decreasing move *)
  | P_neighbor { stencil; degree; _ } -> (if stencil then 1 else 2) + degree
  | P_compute _ -> 0

let phase_bytes = function
  | P_ring { bytes; _ }
  | P_pairwise { bytes }
  | P_fan_in { bytes; _ }
  | P_coll { bytes; _ }
  | P_sub_coll { bytes; _ }
  | P_neighbor { bytes; _ } ->
      bytes
  | P_compute { usecs } -> usecs

let measure (p : prog) =
  ( List.length p.phases,
    p.reps,
    p.nranks,
    List.fold_left (fun a ph -> a + phase_weight ph) 0 p.phases,
    List.fold_left (fun a ph -> a + phase_bytes ph) 0 p.phases )

(* Re-target a phase after a rank-count reduction. *)
let remap_phase ~nranks = function
  | P_ring { offset; bytes } ->
      P_ring { offset = 1 + ((offset - 1) mod (nranks - 1)); bytes }
  | P_pairwise _ as ph -> ph
  | P_fan_in f -> P_fan_in { f with root = f.root mod nranks }
  | P_coll c -> P_coll { c with root = c.root mod nranks }
  | P_sub_coll s ->
      let parts = if s.parts >= 2 && 2 * s.parts <= nranks then s.parts else 1 in
      P_sub_coll { s with parts; root = s.root mod nranks }
  | P_neighbor nb ->
      let stride = if 2 * nb.stride <= nranks then nb.stride else 1 in
      P_neighbor { nb with stride }
  | P_compute _ as ph -> ph

let with_nranks nranks (p : prog) =
  { p with nranks; phases = List.map (remap_phase ~nranks) p.phases }

(* Simpler variants of one phase, most aggressive first. *)
let simplify_phase = function
  | P_fan_in ({ any_tag = true; _ } as f) -> [ P_fan_in { f with any_tag = false } ]
  | P_neighbor ({ stencil = false; _ } as nb) ->
      [ P_neighbor { nb with stencil = true } ]
  | P_neighbor ({ degree; _ } as nb) when degree > 1 ->
      [ P_neighbor { nb with degree = 1 } ]
  | P_neighbor ({ bytes; _ } as nb) when bytes > 32 ->
      [ P_neighbor { nb with bytes = 32 } ]
  | P_coll ({ skewed = true; _ } as c) -> [ P_coll { c with skewed = false } ]
  | P_sub_coll { op; root; bytes; _ } -> [ P_coll { op; root; bytes; skewed = false } ]
  | P_ring ({ bytes; _ } as r) when bytes > 64 -> [ P_ring { r with bytes = 64 } ]
  | P_pairwise { bytes } when bytes > 64 -> [ P_pairwise { bytes = 64 } ]
  | P_fan_in ({ bytes; _ } as f) when bytes > 64 -> [ P_fan_in { f with bytes = 64 } ]
  | P_coll ({ bytes; _ } as c) when bytes > 64 -> [ P_coll { c with bytes = 64 } ]
  | P_compute { usecs } when usecs > 1 -> [ P_compute { usecs = 1 } ]
  | _ -> []

let nth_replaced l i v = List.mapi (fun j x -> if j = i then v else x) l

let nth_removed l i = List.filteri (fun j _ -> j <> i) l

(* Candidate successors in a fixed order: structural deletions first
   (phases, then reps, then ranks), local simplifications last.  Order is
   what makes greedy shrinking deterministic. *)
let candidates (p : prog) =
  let drop_phases =
    List.mapi (fun i _ -> { p with phases = nth_removed p.phases i }) p.phases
  in
  let drop_reps = if p.reps > 1 then [ { p with reps = 1 } ] else [] in
  let drop_ranks =
    if p.nranks > 2 then
      let shrunk = if p.nranks > 4 then [ with_nranks 2 p ] else [] in
      shrunk @ [ with_nranks (p.nranks - 1) p ]
    else []
  in
  let simpler =
    List.concat
      (List.mapi
         (fun i ph ->
           List.map (fun ph' -> { p with phases = nth_replaced p.phases i ph' })
             (simplify_phase ph))
         p.phases)
  in
  List.filter
    (fun c -> Result.is_ok (validate c) && measure c < measure p)
    (drop_phases @ drop_reps @ drop_ranks @ simpler)

let minimize ?(max_steps = 500) ?(should_stop = fun () -> false) ~still_fails
    prog =
  let steps = ref 0 in
  let stopped = ref false in
  let rec go prog =
    if !steps >= max_steps || !stopped then prog
    else
      (* [should_stop] is polled before every oracle evaluation, not
         just between shrink iterations: one iteration can evaluate
         dozens of candidates, each a full pipeline run, so a time
         budget must be able to interrupt mid-iteration. *)
      match
        List.find_opt
          (fun c ->
            if !stopped || should_stop () then begin
              stopped := true;
              false
            end
            else begin
              incr steps;
              still_fails c
            end)
          (candidates prog)
      with
      | Some c -> go c
      | None -> prog
  in
  let minimized = go prog in
  (minimized, !steps)
