(* Corruption-robustness campaigns.

   Where {!Campaign} fuzzes the pipeline's *semantics* with random
   programs, this module fuzzes its *ingestion* with damaged trace
   files: take a known-good framed trace, mutilate it (bit flips,
   truncations — including one at every frame boundary — whole-rank
   ablation, garbled headers), and assert the robustness contract:

   - no mutation may crash or hang the loader or the pipeline — every
     outcome is typed (strict load, salvage report, typed [gen_error]);
   - under best-effort recovery, every salvaged trace with at least two
     surviving ranks must still yield a parseable, replayable benchmark.

   All mutations are deterministic functions of the seed. *)

type outcome_kind =
  | O_strict_ok  (** damage missed everything the strict loader checks *)
  | O_salvaged_generated  (** salvage + best-effort pipeline succeeded *)
  | O_salvaged_error of string  (** salvaged, but the pipeline said no *)
  | O_unrecoverable  (** the salvage loader itself gave up (typed) *)

type violation = {
  v_seed : int;
  v_app : string;
  v_mutation : string;
  v_what : string;  (** what broke the contract *)
}

type config = {
  seed_start : int;
  seeds : int;
  apps : string list;  (** registry apps to draw baselines from *)
  nranks : int;
  sweep_boundaries : bool;
      (** additionally truncate each baseline at every frame boundary *)
  replay_max_events : int;  (** watchdog for the replay check *)
  log : string -> unit;
}

let default =
  {
    seed_start = 1;
    seeds = 100;
    apps = [ "ring"; "stencil2d"; "butterfly"; "cg" ];
    nranks = 8;
    sweep_boundaries = true;
    replay_max_events = 500_000;
    log = ignore;
  }

type summary = {
  cases : int;
  strict_ok : int;
  salvaged : int;
  unrecoverable : int;
  generated : int;
  replayed : int;
  violations : violation list;
  metrics : Obs.Metrics.t;
}

(* ------------------------------------------------------------------ *)
(* Baselines                                                            *)

let baseline_cache : (string * int, string) Hashtbl.t = Hashtbl.create 8

let baseline ~nranks name =
  match Hashtbl.find_opt baseline_cache (name, nranks) with
  | Some bytes -> bytes
  | None ->
      let app =
        match Apps.Registry.find name with
        | Some a -> a
        | None -> invalid_arg (Printf.sprintf "Corrupt: unknown app %S" name)
      in
      let nranks = Apps.Registry.fit_nranks app ~wanted:nranks in
      let trace, _ =
        Scalatrace.Tracer.trace_run ~nranks (app.program ())
      in
      let bytes = Scalatrace.Trace_io.to_framed trace in
      Hashtbl.replace baseline_cache (name, nranks) bytes;
      bytes

(* Byte offsets of every frame-header line — the interesting truncation
   points. *)
let frame_boundaries bytes =
  let n = String.length bytes in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      let acc =
        if
          n - pos >= 6
          && String.sub bytes pos 6 = "frame "
          && (pos = 0 || bytes.[pos - 1] = '\n')
        then pos :: acc
        else acc
      in
      match String.index_from_opt bytes pos '\n' with
      | Some nl -> go (nl + 1) acc
      | None -> List.rev acc
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Mutations                                                            *)

let mutate rng bytes =
  let n = String.length bytes in
  match Random.State.int rng 5 with
  | 0 ->
      let i = Random.State.int rng n in
      let b = Bytes.of_string bytes in
      let bit = 1 lsl Random.State.int rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
      (Printf.sprintf "bit-flip@%d" i, Bytes.to_string b)
  | 1 ->
      let i = Random.State.int rng n in
      (Printf.sprintf "truncate@%d" i, String.sub bytes 0 i)
  | 2 -> (
      match frame_boundaries bytes with
      | [] -> ("truncate@0", "")
      | bs ->
          let i = List.nth bs (Random.State.int rng (List.length bs)) in
          (Printf.sprintf "truncate-boundary@%d" i, String.sub bytes 0 i))
  | 3 -> (
      (* ablate one whole rank frame: header line + payload + separator *)
      let bs = frame_boundaries bytes in
      let rank_frames =
        List.filter
          (fun pos ->
            String.length bytes - pos > 11
            && String.sub bytes pos 11 = "frame rank:")
          bs
      in
      match rank_frames with
      | [] -> ("noop", bytes)
      | rf ->
          let start = List.nth rf (Random.State.int rng (List.length rf)) in
          let stop =
            match List.find_opt (fun b -> b > start) bs with
            | Some b -> b
            | None -> String.length bytes
          in
          ( Printf.sprintf "ablate-frame@%d" start,
            String.sub bytes 0 start
            ^ String.sub bytes stop (String.length bytes - stop) ))
  | _ -> (
      (* garble a frame-header line *)
      match frame_boundaries bytes with
      | [] -> ("noop", bytes)
      | bs ->
          let pos = List.nth bs (Random.State.int rng (List.length bs)) in
          let b = Bytes.of_string bytes in
          Bytes.set b (pos + 2) '?';
          (Printf.sprintf "garble-header@%d" pos, Bytes.to_string b))

(* ------------------------------------------------------------------ *)
(* One case                                                             *)

let surviving_ranks (report : Scalatrace.Salvage.report) =
  List.length
    (List.filter
       (fun (rr : Scalatrace.Salvage.rank_recovery) -> rr.rr_events > 0)
       report.per_rank)

(* Run one mutated byte string through load → salvage → best-effort
   pipeline → parse → replay, classifying the outcome and returning the
   contract violation, if any. *)
let check_case cfg ~seed ~app ~mutation bytes =
  let violation what = Some { v_seed = seed; v_app = app; v_mutation = mutation; v_what = what } in
  match Scalatrace.Trace_io.of_string bytes with
  | _trace -> (O_strict_ok, None, false)
  | exception Scalatrace.Trace_io.Format_error _ -> (
      match Scalatrace.Salvage.of_string bytes with
      | Error _ -> (O_unrecoverable, None, false)
      | exception e ->
          ( O_unrecoverable,
            violation
              ("salvage loader raised " ^ Printexc.to_string e),
            false )
      | Ok (trace, report) -> (
          let survivors = surviving_ranks report in
          let cfg' =
            {
              Benchgen.Pipeline.default with
              recovery = `Best_effort;
              max_events = Some cfg.replay_max_events;
            }
          in
          match
            Benchgen.Pipeline.run cfg' (Benchgen.Pipeline.From_trace trace)
          with
          | exception e ->
              ( O_salvaged_error (Printexc.to_string e),
                violation ("pipeline raised " ^ Printexc.to_string e),
                false )
          | Error e ->
              let msg = Benchgen.Pipeline.error_to_string e in
              ( O_salvaged_error msg,
                (if survivors >= 2 then
                   violation
                     (Printf.sprintf
                        "best-effort generation refused a trace with %d \
                         surviving ranks: %s"
                        survivors msg)
                 else None),
                false )
          | Ok (artifact, _warnings) -> (
              let text = artifact.Benchgen.Pipeline.report.text in
              match Conceptual.Parse.program text with
              | exception e ->
                  ( O_salvaged_generated,
                    violation
                      ("generated benchmark does not parse: "
                     ^ Printexc.to_string e),
                    false )
              | program -> (
                  match
                    Conceptual.Lower.run
                      ~max_events:cfg.replay_max_events
                      ~nranks:(Scalatrace.Trace.nranks trace)
                      program
                  with
                  | _res -> (O_salvaged_generated, None, true)
                  | exception e ->
                      ( O_salvaged_generated,
                        violation
                          ("generated benchmark does not replay: "
                         ^ Printexc.to_string e),
                        false )))))

(* ------------------------------------------------------------------ *)
(* Campaign                                                             *)

let run cfg =
  let metrics = Obs.Metrics.create () in
  let strict_ok = ref 0
  and salvaged = ref 0
  and unrecoverable = ref 0
  and generated = ref 0
  and replayed = ref 0
  and cases = ref 0 in
  let violations = ref [] in
  let record (kind, viol, did_replay) =
    incr cases;
    let k =
      match kind with
      | O_strict_ok ->
          incr strict_ok;
          "strict_ok"
      | O_salvaged_generated ->
          incr salvaged;
          incr generated;
          "salvaged_generated"
      | O_salvaged_error _ ->
          incr salvaged;
          "salvaged_error"
      | O_unrecoverable ->
          incr unrecoverable;
          "unrecoverable"
    in
    if did_replay then incr replayed;
    Obs.Metrics.inc metrics ~labels:[ ("outcome", k) ] "corrupt.cases";
    match viol with
    | None -> ()
    | Some v ->
        violations := v :: !violations;
        Obs.Metrics.inc metrics "corrupt.violations";
        cfg.log
          (Printf.sprintf "VIOLATION seed=%d app=%s %s: %s" v.v_seed v.v_app
             v.v_mutation v.v_what)
  in
  (* exhaustive frame-boundary truncation sweep *)
  if cfg.sweep_boundaries then
    List.iter
      (fun app ->
        let bytes = baseline ~nranks:cfg.nranks app in
        List.iter
          (fun pos ->
            let mutation = Printf.sprintf "sweep-truncate@%d" pos in
            record
              (check_case cfg ~seed:0 ~app ~mutation
                 (String.sub bytes 0 pos)))
          (frame_boundaries bytes))
      cfg.apps;
  (* seeded random mutations *)
  for seed = cfg.seed_start to cfg.seed_start + cfg.seeds - 1 do
    let app = List.nth cfg.apps (seed mod List.length cfg.apps) in
    let bytes = baseline ~nranks:cfg.nranks app in
    let rng = Random.State.make [| seed; 0x5eed |] in
    let mutation, mutated = mutate rng bytes in
    record (check_case cfg ~seed ~app ~mutation mutated)
  done;
  {
    cases = !cases;
    strict_ok = !strict_ok;
    salvaged = !salvaged;
    unrecoverable = !unrecoverable;
    generated = !generated;
    replayed = !replayed;
    violations = List.rev !violations;
    metrics;
  }
