(** Typed random SPMD programs, deadlock-free by construction.

    A {!prog} is a pure description — rank count, repetition count, and a
    list of globally consistent communication phases — that every rank
    interprets identically ({!to_app}), so the program can never deadlock
    and the differential oracle ({!Oracle}) can re-run it bit-reproducibly
    on both sides of the pipeline.

    The phase vocabulary deliberately covers the pipeline's hard cases:

    - {!phase.P_coll} with [skewed] issues one collective from two
      distinct call sites (Algorithm 1 alignment);
    - {!phase.P_fan_in} posts [ANY_SOURCE] (optionally any-tag) receives
      whose matchings are kept unique by per-phase tag channels and, for
      any-tag, a trailing barrier (Algorithm 2 resolution);
    - {!phase.P_sub_coll} splits or duplicates the communicator;
    - {!phase.P_coll} ranges over every Table 1 collective. *)

type coll =
  | C_barrier
  | C_bcast
  | C_reduce
  | C_allreduce
  | C_gather
  | C_gatherv
  | C_allgather
  | C_allgatherv
  | C_scatter
  | C_scatterv
  | C_alltoall
  | C_alltoallv
  | C_reduce_scatter

val all_colls : coll list
val coll_to_string : coll -> string
val coll_of_string : string -> coll option

type phase =
  | P_ring of { offset : int; bytes : int }
      (** every rank sends [offset] forward and receives from [offset]
          back, on tag 0; [offset] in [1, nranks-1] *)
  | P_pairwise of { bytes : int }
      (** disjoint sendrecv pairs 2k <-> 2k+1 (odd rank counts leave the
          last rank idle) *)
  | P_fan_in of { root : int; tag : int; bytes : int; any_tag : bool }
      (** non-roots send to [root] on the phase's private [tag] (>= 1,
          unique per program) after a rank-dependent compute skew; [root]
          receives [nranks-1] times from [ANY_SOURCE], with [MPI_ANY_TAG]
          when [any_tag] (then the phase ends in a barrier so a wildcard
          cannot steal a later phase's message) *)
  | P_coll of { op : coll; root : int; bytes : int; skewed : bool }
      (** a world collective; [skewed] issues it from two call sites by
          rank parity *)
  | P_sub_coll of { parts : int; op : coll; root : int; bytes : int }
      (** the collective on a split communicator of [parts] contiguous
          groups (each >= 2 ranks), or on a dup of the world communicator
          when [parts = 1]; [root] is taken mod the group size *)
  | P_neighbor of {
      stride : int;
      degree : int;
      salt : int;
      stencil : bool;
      gather : bool;
      bytes : int;
    }
      (** a neighborhood collective over the ranks divisible by [stride]
          (validation keeps >= 2 of them; [stride = 1] uses the implicit
          full-communicator participant path).  Neighbor offsets in
          participant-position space are a pure function of
          [(salt, position)] — position-independent when [stencil] (the
          isomorphic fast path), per-participant otherwise — so every
          rank agrees on the topology and the phase cannot deadlock.
          [gather] selects neighbor_allgather over neighbor_alltoall. *)
  | P_compute of { usecs : int }  (** pure local work *)

type prog = { nranks : int; reps : int; phases : phase list }

(** Generator bias: [`Mixed] is the historical vocabulary (byte-identical
    draw stream to before neighborhood phases existed); [`Neighbor] keeps
    the full vocabulary but redirects half the phase draws to
    {!phase.P_neighbor}. *)
type mode = [ `Mixed | `Neighbor ]

(** Largest [nranks] {!validate} accepts. *)
val max_nranks : int

(** Check the structural invariants the constructors above document
    (offset/root ranges, unique fan-in tags, split-group sizes, ...).
    Everything {!generate} draws — and every {!Shrink} candidate —
    satisfies them. *)
val validate : prog -> (unit, string) result

(** Interpret the program as an SPMD application.  Deterministic: the
    same [prog] always issues the same calls from the same synthetic call
    sites. *)
val to_app : prog -> Mpisim.Mpi.ctx -> unit

(** Draw a program; pure function of [seed] ([`Mixed] mode).  [nranks]
    in [2, 12], up to 8 phases, up to 3 repetitions. *)
val generate : seed:int -> prog

(** [generate] with an explicit generator bias; pure function of
    [(mode, seed)].  [generate_with ~mode:`Mixed] is [generate]. *)
val generate_with : mode:mode -> seed:int -> prog

val pp_phase : Format.formatter -> phase -> unit
val pp : Format.formatter -> prog -> unit
val to_string : prog -> string
