module P = Serve.Protocol
module Sup = Serve.Supervisor
module Policy = Serve.Policy

type config = {
  seed_start : int;
  seeds : int;
  workers : int;
  log : string -> unit;
}

let default = { seed_start = 1; seeds = 50; workers = 1; log = ignore }

type violation = { v_seed : int; v_what : string }

type summary = {
  cases : int;
  jobs : int;
  violations : violation list;
  metrics : Obs.Metrics.t;
}

(* The job kinds the synthetic runner can play — the serve analogue of
   the pipeline defect seam.  [Oversized] and [Garbage] never reach the
   runner: they exercise the protocol's admission path. *)
type kind =
  | K_clean
  | K_flaky  (** fails below [`Best_effort], succeeds there *)
  | K_fatal  (** fails at every recovery level *)
  | K_hang  (** consumes its whole deadline; killed every attempt *)
  | K_crash  (** raises into the supervisor *)
  | K_oversized
  | K_garbage

let draw_kind rng =
  match Util.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> K_clean
  | 4 | 5 -> K_flaky
  | 6 -> K_fatal
  | 7 -> K_hang
  | 8 -> ( match Util.Rng.int rng 2 with 0 -> K_crash | _ -> K_oversized)
  | _ -> K_garbage

let ok_info ~statements =
  {
    P.ok_statements = statements;
    ok_final_rsds = statements / 2;
    ok_recovery = "strict";
    ok_warnings = [];
    ok_text = None;
    ok_out = None;
  }

(* One scenario: returns (transcript, per-check violations, submissions). *)
let scenario ~seed =
  let rng = Util.Rng.create ~seed in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let queue_limit = 2 + Util.Rng.int rng 4 in
  let max_request_bytes = 512 in
  let policy =
    {
      Policy.default with
      deadline_s = Some 1.0;
      max_retries = Util.Rng.int rng 3;
      backoff_base_s = 0.01;
      backoff_max_s = 0.5;
      jitter = 0.3;
    }
  in
  let clock = Sup.sim_clock () in
  let jobs : (string, kind * float) Hashtbl.t = Hashtbl.create 32 in
  let runner (sub : P.submit) ~recovery ~deadline_s =
    let kind, dur =
      try Hashtbl.find jobs sub.P.sub_id
      with Not_found -> (K_clean, 0.01)
    in
    match kind with
    | K_clean ->
        clock.Sup.sleep dur;
        Sup.A_ok (ok_info ~statements:(4 + int_of_float (dur *. 100.)))
    | K_flaky ->
        clock.Sup.sleep dur;
        if recovery = `Best_effort then
          Sup.A_ok (ok_info ~statements:3)
        else
          Sup.A_error
            {
              P.e_tag = "unrecoverable_trace";
              e_path = Some (sub.P.sub_id ^ ".trace");
              e_retryable = true;
              e_detail = "synthetic: damaged trace, needs best-effort recovery";
            }
    | K_fatal ->
        clock.Sup.sleep dur;
        Sup.A_error
          {
            P.e_tag = "trace_format";
            e_path = Some (sub.P.sub_id ^ ".trace");
            e_retryable = true;
            e_detail = "synthetic: unparseable at every recovery level";
          }
    | K_hang ->
        (match deadline_s with
        | Some d ->
            clock.Sup.sleep d;
            Sup.A_timeout
        | None ->
            clock.Sup.sleep dur;
            Sup.A_ok (ok_info ~statements:1))
    | K_crash -> failwith "synthetic worker heap corruption"
    | K_oversized | K_garbage -> assert false
  in
  let sup =
    Sup.create ~queue_limit ~seed ~runner ~clock ()
  in
  let transcript = Buffer.create 4096 in
  let responses = ref [] in
  let record (r : P.response) =
    responses := r :: !responses;
    Buffer.add_string transcript (P.response_to_line r);
    Buffer.add_char transcript '\n';
    (* typed-responses-only: every line must round-trip *)
    (match P.response_of_line (P.response_to_line r) with
    | r' ->
        if r' <> r then violate "response does not round-trip: %s" (P.response_to_line r)
    | exception Obs.Json.Parse_error msg ->
        violate "unparseable response (%s): %s" msg (P.response_to_line r))
  in
  let check_bound where =
    if Sup.queue_length sup > queue_limit then
      violate "queue depth %d exceeds limit %d (%s)" (Sup.queue_length sup)
        queue_limit where
  in
  let n_jobs = 8 + Util.Rng.int rng 13 in
  let submitted = ref 0 in
  let next_id () =
    incr submitted;
    Printf.sprintf "s%d-j%d" seed !submitted
  in
  let submit_one () =
    let kind = draw_kind rng in
    match kind with
    | K_oversized ->
        (* a request line longer than the configured cap; the body never
           gets parsed *)
        let line =
          Printf.sprintf "{\"op\":\"submit\",\"id\":\"big\",\"pad\":\"%s\"}"
            (String.make (max_request_bytes + 64) 'x')
        in
        (match
           P.parse_request ~default_policy:policy ~max_bytes:max_request_bytes
             line
         with
        | Error (id, reason) -> record (Sup.reject sup ?id reason)
        | Ok _ -> violate "oversized line was not rejected")
    | K_garbage ->
        (match
           P.parse_request ~default_policy:policy ~max_bytes:max_request_bytes
             "this is not json"
         with
        | Error (id, reason) -> record (Sup.reject sup ?id reason)
        | Ok _ -> violate "garbage line was not rejected")
    | _ ->
        let id = next_id () in
        let dur = 0.01 +. (Util.Rng.float rng *. 0.2) in
        Hashtbl.replace jobs id (kind, dur);
        let sub =
          {
            P.sub_id = id;
            sub_source = P.J_file (id ^ ".trace");
            sub_policy = policy;
            sub_out = None;
            sub_emit_text = false;
          }
        in
        (match Sup.submit sup sub with
        | P.Accepted { queue_depth; _ } as r ->
            if queue_depth > queue_limit then
              violate "accepted %s with queue_depth %d > limit %d" id
                queue_depth queue_limit;
            record r
        | r -> record r)
  in
  let remaining () = !submitted < n_jobs in
  (* the interleaving: submissions in bursts, executions, health probes *)
  let rec drive () =
    if remaining () || Sup.queue_length sup > 0 then begin
      (match Util.Rng.int rng 10 with
      | (0 | 1 | 2 | 3 | 4) when remaining () ->
          let burst = 1 + Util.Rng.int rng 3 in
          for _ = 1 to burst do
            if remaining () then submit_one ()
          done
      | 5 | 6 | 7 -> (
          match Sup.run_next sup with Some r -> record r | None -> ())
      | 8 -> record (Sup.health sup)
      | _ -> (
          if remaining () then submit_one ()
          else
            match Sup.run_next sup with Some r -> record r | None -> ()));
      check_bound "drive";
      drive ()
    end
  in
  (try drive ()
   with exn ->
     violate "supervisor raised during scenario: %s" (Printexc.to_string exn));
  (* final submissions rejected while draining are part of the contract *)
  let tail_responses =
    try
      if Util.Rng.int rng 4 = 0 then Sup.shutdown sup else Sup.drain sup
    with exn ->
      violate "supervisor raised during drain: %s" (Printexc.to_string exn);
      []
  in
  List.iter record tail_responses;
  check_bound "after drain";
  if Sup.queue_length sup <> 0 then
    violate "queue not empty after drain: %d" (Sup.queue_length sup);
  (* --- transcript-level contract ------------------------------------ *)
  let responses = List.rev !responses in
  let accepted = Hashtbl.create 32 and terminal = Hashtbl.create 32 in
  let rejected_ids = Hashtbl.create 8 in
  let results = ref 0 and cancelled = ref 0 and drained = ref None in
  List.iter
    (fun (r : P.response) ->
      match r with
      | P.Accepted { id; _ } -> Hashtbl.replace accepted id ()
      | P.Rejected { id = Some id; _ } -> Hashtbl.replace rejected_ids id ()
      | P.Rejected { id = None; _ } -> ()
      | P.Result_ok { id; _ } | P.Result_error { id; _ } ->
          incr results;
          Hashtbl.replace terminal id (1 + Option.value ~default:0 (Hashtbl.find_opt terminal id))
      | P.Cancelled { id } ->
          incr cancelled;
          Hashtbl.replace terminal id (1 + Option.value ~default:0 (Hashtbl.find_opt terminal id))
      | P.Health_report _ -> ()
      | P.Drained { jobs_run; cancelled } ->
          drained := Some (jobs_run, cancelled))
    responses;
  Hashtbl.iter
    (fun id () ->
      match Hashtbl.find_opt terminal id with
      | Some 1 -> ()
      | Some n -> violate "job %s got %d terminal responses" id n
      | None -> violate "job %s was accepted but never resolved (lost)" id)
    accepted;
  Hashtbl.iter
    (fun id () ->
      if (not (Hashtbl.mem accepted id)) && Hashtbl.mem terminal id then
        violate "job %s was rejected yet got a terminal response" id)
    rejected_ids;
  (match !drained with
  | None -> violate "no drained summary emitted"
  | Some (jobs_run, d_cancelled) ->
      if jobs_run <> !results then
        violate "drained.jobs_run=%d but %d results seen" jobs_run !results;
      if d_cancelled <> !cancelled then
        violate "drained.cancelled=%d but %d cancellations seen" d_cancelled
          !cancelled);
  (Buffer.contents transcript, List.rev !violations, !submitted,
   Sup.metrics sup)

(* ------------------------------------------------------------------ *)
(* Concurrent scenarios: a worker pool on virtual time                  *)

module Pool = Serve.Pool

(* Job kinds for the pool.  Crashes here are *process deaths* of the
   scripted worker (the single-worker K_crash raised in-process); the
   pool must restart the slot and either retry the job elsewhere or
   quarantine it as poisoned. *)
type ckind =
  | C_clean
  | C_flaky
  | C_fatal
  | C_hang  (** never answers; freed only by the deadline kill *)
  | C_crash_once  (** kills its first worker, then succeeds *)
  | C_poison  (** kills every worker it touches *)

let draw_ckind rng =
  match Util.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> C_clean
  | 4 | 5 -> C_flaky
  | 6 -> C_fatal
  | 7 -> C_hang
  | 8 -> C_crash_once
  | _ -> C_poison

let concurrent_scenario ~seed ~workers =
  let rng = Util.Rng.create ~seed in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let queue_limit = 4 + Util.Rng.int rng 8 in
  let policy =
    {
      Policy.default with
      deadline_s = Some 1.0;
      max_retries = 1 + Util.Rng.int rng 2;
      backoff_base_s = 0.01;
      backoff_max_s = 0.5;
      jitter = 0.3;
    }
  in
  let wpolicy =
    {
      Pool.default_wpolicy with
      workers;
      restart_backoff_base_s = 0.02;
      restart_backoff_max_s = 0.2;
      breaker_deaths = 2 + Util.Rng.int rng 2;
      breaker_window_s = 10.0;
      breaker_cooldown_s = 0.5 +. Util.Rng.float rng;
      poison_crashes = 2;
    }
  in
  let pool = Pool.create ~queue_limit ~seed ~wpolicy () in
  let jobs : (string, ckind * float) Hashtbl.t = Hashtbl.create 32 in
  let n_jobs = 10 + Util.Rng.int rng 15 in
  let submitted = ref 0 in
  (* deterministic timeline of external inputs, built up front *)
  let timeline = ref [] and tcur = ref 0. in
  let add input = timeline := (!tcur, input) :: !timeline in
  let submit_one () =
    incr submitted;
    let id = Printf.sprintf "s%d-j%d" seed !submitted in
    let kind = draw_ckind rng in
    let dur = 0.01 +. (Util.Rng.float rng *. 0.2) in
    Hashtbl.replace jobs id (kind, dur);
    add
      (Pool.Sim.I_submit
         {
           P.sub_id = id;
           sub_source = P.J_file (id ^ ".trace");
           sub_policy = policy;
           sub_out = None;
           sub_emit_text = false;
         })
  in
  while !submitted < n_jobs do
    tcur := !tcur +. (Util.Rng.float rng *. 0.15);
    match Util.Rng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 ->
        let burst = 1 + Util.Rng.int rng 2 in
        for _ = 1 to burst do
          if !submitted < n_jobs then submit_one ()
        done
    | 5 -> add (Pool.Sim.I_kill (Util.Rng.int rng workers))
    | 6 -> add Pool.Sim.I_health
    | _ -> submit_one ()
  done;
  tcur := !tcur +. 0.2;
  let shutdown = Util.Rng.int rng 4 = 0 in
  add (if shutdown then Pool.Sim.I_shutdown else Pool.Sim.I_drain);
  let timeline = List.rev !timeline in
  let script (sub : P.submit) ~attempt ~recovery =
    let kind, dur =
      try Hashtbl.find jobs sub.P.sub_id with Not_found -> (C_clean, 0.01)
    in
    match kind with
    | C_clean ->
        Pool.Sim.B_ok { dur; statements = 4 + int_of_float (dur *. 100.) }
    | C_flaky ->
        if recovery = `Best_effort then Pool.Sim.B_ok { dur; statements = 3 }
        else
          Pool.Sim.B_error
            {
              dur;
              error =
                {
                  P.e_tag = "unrecoverable_trace";
                  e_path = Some (sub.P.sub_id ^ ".trace");
                  e_retryable = true;
                  e_detail =
                    "synthetic: damaged trace, needs best-effort recovery";
                };
            }
    | C_fatal ->
        Pool.Sim.B_error
          {
            dur;
            error =
              {
                P.e_tag = "trace_format";
                e_path = Some (sub.P.sub_id ^ ".trace");
                e_retryable = true;
                e_detail = "synthetic: unparseable at every recovery level";
              };
          }
    | C_hang -> Pool.Sim.B_hang
    | C_crash_once ->
        if attempt = 0 then
          Pool.Sim.B_crash { dur; detail = "synthetic segfault (first attempt)" }
        else Pool.Sim.B_ok { dur; statements = 2 }
    | C_poison -> Pool.Sim.B_crash { dur; detail = "synthetic poison pill" }
  in
  let outcomes =
    try Pool.Sim.run ~spawn_delay_s:0.005 ~pool ~script ~timeline ()
    with exn ->
      violate "pool raised during scenario: %s" (Printexc.to_string exn);
      []
  in
  let transcript = Buffer.create 4096 in
  List.iter
    (fun (at, r) ->
      Buffer.add_string transcript
        (Printf.sprintf "%.6f %s\n" at (P.response_to_line r));
      (* typed-responses-only: every line must round-trip *)
      match P.response_of_line (P.response_to_line r) with
      | r' ->
          if r' <> r then
            violate "response does not round-trip: %s" (P.response_to_line r)
      | exception Obs.Json.Parse_error msg ->
          violate "unparseable response (%s): %s" msg (P.response_to_line r))
    outcomes;
  (* --- transcript-level contract ------------------------------------ *)
  let responses = List.map snd outcomes in
  let accepted = Hashtbl.create 32 and terminal = Hashtbl.create 32 in
  let rejected_ids = Hashtbl.create 8 in
  let results = ref 0 and cancelled = ref 0 and drained = ref None in
  List.iter
    (fun (r : P.response) ->
      match r with
      | P.Accepted { id; _ } -> Hashtbl.replace accepted id ()
      | P.Rejected { id = Some id; _ } -> Hashtbl.replace rejected_ids id ()
      | P.Rejected { id = None; _ } -> ()
      | P.Result_ok { id; _ } ->
          incr results;
          Hashtbl.replace terminal id
            (1 + Option.value ~default:0 (Hashtbl.find_opt terminal id))
      | P.Result_error { id; attempts; error } ->
          incr results;
          Hashtbl.replace terminal id
            (1 + Option.value ~default:0 (Hashtbl.find_opt terminal id));
          if error.P.e_tag = "poisoned" && attempts < 2 then
            violate "job %s poisoned after only %d attempt(s)" id attempts
      | P.Cancelled { id } ->
          incr cancelled;
          Hashtbl.replace terminal id
            (1 + Option.value ~default:0 (Hashtbl.find_opt terminal id))
      | P.Health_report h ->
          if h.queue_depth > queue_limit then
            violate "health reports queue depth %d > limit %d" h.queue_depth
              queue_limit
      | P.Drained { jobs_run; cancelled } -> drained := Some (jobs_run, cancelled))
    responses;
  Hashtbl.iter
    (fun id () ->
      match Hashtbl.find_opt terminal id with
      | Some 1 -> ()
      | Some n -> violate "job %s got %d terminal responses" id n
      | None -> violate "job %s was accepted but never resolved (lost)" id)
    accepted;
  Hashtbl.iter
    (fun id () ->
      if (not (Hashtbl.mem accepted id)) && Hashtbl.mem terminal id then
        violate "job %s was rejected yet got a terminal response" id)
    rejected_ids;
  (match !drained with
  | None -> violate "no drained summary emitted"
  | Some (jobs_run, d_cancelled) ->
      if jobs_run <> !results then
        violate "drained.jobs_run=%d but %d results seen" jobs_run !results;
      if d_cancelled <> !cancelled then
        violate "drained.cancelled=%d but %d cancellations seen" d_cancelled
          !cancelled);
  if not (Pool.idle pool) then
    violate "pool not idle after drain: %d live jobs" (Pool.queue_length pool);
  let depth_max =
    match Obs.Metrics.gauge_value (Pool.metrics pool) "serve.queue_depth_max" with
    | Some d -> int_of_float d
    | None -> 0
  in
  if depth_max > queue_limit then
    violate "queue depth high-water %d exceeds limit %d" depth_max queue_limit;
  ( Buffer.contents transcript,
    List.rev !violations,
    !submitted,
    Pool.metrics pool )

let scenario_for cfg ~seed =
  if cfg.workers <= 1 then scenario ~seed
  else concurrent_scenario ~seed ~workers:cfg.workers

let transcript ?(workers = 1) ~seed () =
  let t, _, _, _ =
    if workers <= 1 then scenario ~seed
    else concurrent_scenario ~seed ~workers
  in
  t

let run cfg =
  let metrics = Obs.Metrics.create () in
  let violations = ref [] in
  let jobs = ref 0 in
  for i = 0 to cfg.seeds - 1 do
    let seed = cfg.seed_start + i in
    let t1, vs, submitted, m = scenario_for cfg ~seed in
    jobs := !jobs + submitted;
    Obs.Metrics.merge_into metrics m;
    List.iter
      (fun v ->
        cfg.log (Printf.sprintf "seed %d: VIOLATION: %s" seed v);
        violations := { v_seed = seed; v_what = v } :: !violations)
      vs;
    (* same seed => byte-identical transcript *)
    let t2, _, _, _ = scenario_for cfg ~seed in
    if t1 <> t2 then begin
      cfg.log (Printf.sprintf "seed %d: VIOLATION: transcript not deterministic" seed);
      violations :=
        { v_seed = seed; v_what = "same-seed transcripts differ" }
        :: !violations
    end
  done;
  Obs.Metrics.inc metrics ~by:cfg.seeds "servefuzz.cases";
  Obs.Metrics.inc metrics ~by:!jobs "servefuzz.jobs";
  {
    cases = cfg.seeds;
    jobs = !jobs;
    violations = List.rev !violations;
    metrics;
  }
