type config = {
  seed_start : int;
  seeds : int;
  defect : Benchgen.Pipeline.defect option;
  out_dir : string option;
  time_budget_s : float option;
  max_shrink_steps : int;
  sink : Obs.Sink.t;
  log : string -> unit;
  coll_alg : Mpisim.Coll_alg.t;
  gen_mode : Gen.mode;
}

let default =
  {
    seed_start = 1;
    seeds = 100;
    defect = None;
    out_dir = None;
    time_budget_s = None;
    max_shrink_steps = 500;
    sink = Obs.Sink.nil;
    log = ignore;
    coll_alg = `Monolithic;
    gen_mode = `Mixed;
  }

type counterexample = {
  cx_seed : int;
  cx_violation : Oracle.violation;
  cx_prog : Gen.prog;  (** minimized *)
  cx_shrink_steps : int;
  cx_path : string option;
}

type summary = {
  cases : int;
  passed : int;
  skipped : int;  (** seeds not run: time budget exhausted *)
  counterexamples : counterexample list;
  metrics : Obs.Metrics.t;
}

let ensure_dir path = if not (Sys.file_exists path) then Sys.mkdir path 0o755

let write_counterexample cfg ~seed ~violation prog =
  match cfg.out_dir with
  | None -> None
  | Some dir ->
      ensure_dir dir;
      let meta =
        {
          Corpus.seed = Some seed;
          defect = Option.map Benchgen.Pipeline.defect_to_string cfg.defect;
          note = Some (Oracle.to_string violation);
        }
      in
      let text = Corpus.to_string ~meta prog in
      let path = Filename.concat dir (Printf.sprintf "cx-%d.prog" seed) in
      Corpus.save ~path text;
      (* stable alias to the most recent counterexample, for scripting *)
      Corpus.save ~path:(Filename.concat dir "latest.prog") text;
      Some path

(* One seed: generate, check, shrink on failure.  [over_budget] is the
   campaign's wall-clock budget check; shrinking polls it before every
   oracle evaluation so a budget can interrupt a long minimization. *)
let run_case cfg metrics ~over_budget ~case_index seed =
  let defect = cfg.defect in
  let coll_alg = cfg.coll_alg in
  let prog = Gen.generate_with ~mode:cfg.gen_mode ~seed in
  let result = Oracle.check ?defect ~coll_alg prog in
  let emit name args =
    Obs.Sink.instant cfg.sink ~pid:Obs.Sink.pipeline_pid ~tid:0 ~cat:"fuzz"
      ~args ~ts:(float_of_int case_index) name
  in
  match result with
  | Ok stats ->
      Obs.Metrics.inc metrics ~labels:[ ("result", "pass") ] "fuzz.cases";
      Obs.Metrics.inc metrics ~by:stats.Oracle.s_messages "fuzz.messages";
      Obs.Metrics.inc metrics ~by:stats.Oracle.s_collectives "fuzz.collectives";
      emit "fuzz.pass" [ ("seed", Obs.Sink.A_int seed) ];
      None
  | Error v0 ->
      Obs.Metrics.inc metrics ~labels:[ ("result", "violation") ] "fuzz.cases";
      Obs.Metrics.inc metrics
        ~labels:[ ("kind", Oracle.kind v0) ]
        "fuzz.violations";
      cfg.log
        (Printf.sprintf "seed %d: VIOLATION (%s); shrinking..." seed
           (Oracle.to_string v0));
      let still_fails p = Result.is_error (Oracle.check ?defect ~coll_alg p) in
      let minimized, steps =
        Shrink.minimize ~max_steps:cfg.max_shrink_steps
          ~should_stop:over_budget ~still_fails prog
      in
      (* the minimized program's own violation is the one worth reporting *)
      let violation =
        match Oracle.check ?defect ~coll_alg minimized with
        | Error v -> v
        | Ok _ -> v0
      in
      Obs.Metrics.inc metrics ~by:steps "fuzz.shrink_evals";
      let path = write_counterexample cfg ~seed ~violation minimized in
      emit "fuzz.violation"
        [
          ("seed", Obs.Sink.A_int seed);
          ("kind", Obs.Sink.A_str (Oracle.kind violation));
          ("phases", Obs.Sink.A_int (List.length minimized.Gen.phases));
        ];
      cfg.log
        (Printf.sprintf "seed %d: minimized to %d phase(s) in %d evals%s" seed
           (List.length minimized.Gen.phases)
           steps
           (match path with Some p -> "; wrote " ^ p | None -> ""));
      Some
        {
          cx_seed = seed;
          cx_violation = violation;
          cx_prog = minimized;
          cx_shrink_steps = steps;
          cx_path = path;
        }

let run cfg =
  let metrics = Obs.Metrics.create () in
  (* Wall clock, not [Sys.time]: CPU time stands still while the run
     waits on I/O (counterexample writes) or spans domains, so a CPU
     budget could overshoot wall budgets without bound.  This is the
     same clock serve-mode deadlines run on. *)
  let t0 = Util.Clock.monotonic_s () in
  let over_budget () =
    match cfg.time_budget_s with
    | None -> false
    | Some b -> Util.Clock.monotonic_s () -. t0 > b
  in
  let rec go i acc =
    if i >= cfg.seeds then (i, acc)
    else if over_budget () then begin
      cfg.log
        (Printf.sprintf "time budget exhausted after %d/%d seeds" i cfg.seeds);
      (i, acc)
    end
    else
      let seed = cfg.seed_start + i in
      let acc =
        match run_case cfg metrics ~over_budget ~case_index:i seed with
        | None -> acc
        | Some cx -> cx :: acc
      in
      go (i + 1) acc
  in
  let cases, cxs = go 0 [] in
  let counterexamples = List.rev cxs in
  let skipped = cfg.seeds - cases in
  if skipped > 0 then
    Obs.Metrics.inc metrics ~by:skipped
      ~labels:[ ("result", "skipped") ]
      "fuzz.cases";
  Obs.Metrics.set metrics "fuzz.seed_start" (float_of_int cfg.seed_start);
  Obs.Metrics.set metrics "fuzz.elapsed_s" (Util.Clock.monotonic_s () -. t0);
  {
    cases;
    passed = cases - List.length counterexamples;
    skipped;
    counterexamples;
    metrics;
  }
