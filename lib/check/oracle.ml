module Pipeline = Benchgen.Pipeline

type violation =
  | V_invalid of string
  | V_original of string
  | V_pipeline_error of string
  | V_roundtrip of string
  | V_replay of { side : string; detail : string }
  | V_channels of { side : string; detail : string }
  | V_collectives of { side : string; detail : string }

let kind = function
  | V_invalid _ -> "invalid"
  | V_original _ -> "original"
  | V_pipeline_error _ -> "pipeline_error"
  | V_roundtrip _ -> "roundtrip"
  | V_replay _ -> "replay"
  | V_channels _ -> "channels"
  | V_collectives _ -> "collectives"

let to_string = function
  | V_invalid m -> "invalid program: " ^ m
  | V_original m -> "original program failed: " ^ m
  | V_pipeline_error m -> "pipeline error: " ^ m
  | V_roundtrip m -> "pretty/parse round-trip: " ^ m
  | V_replay { side; detail } -> Printf.sprintf "%s failed: %s" side detail
  | V_channels { side; detail } ->
      Printf.sprintf "%s: p2p channel mismatch: %s" side detail
  | V_collectives { side; detail } ->
      Printf.sprintf "%s: collective mismatch: %s" side detail

(* ------------------------------------------------------------------ *)
(* Observation: one [side] per run                                     *)

(* Per-channel (src, dst, tag — world ranks, message tag) byte sequences
   in matching order.  Per-channel matching is FIFO, so this is exactly
   the sender's program order on that channel: a happens-before order
   both runs must reproduce.  Cross-channel interleaving at a receiver is
   timing, not semantics, and is deliberately not compared. *)
type side = {
  chans : (int * int * int, int list ref) Hashtbl.t;
  colls : (string * int list, int ref) Hashtbl.t;
      (* multiset of normalized (operation, sorted world participants) *)
}

let new_side () = { chans = Hashtbl.create 64; colls = Hashtbl.create 32 }

(* Table 1 normalization, applied to BOTH runs: the original issues
   MPI_Gather, the generated benchmark the substituted MPI_Reduce — both
   normalize to ["RED"] over the same participant set. *)
let norm_ops ~p = function
  | "MPI_Barrier" -> [ "SYNC" ]
  | "MPI_Bcast" | "MPI_Scatter" | "MPI_Scatterv" -> [ "MCAST" ]
  | "MPI_Reduce" | "MPI_Gather" | "MPI_Gatherv" -> [ "RED" ]
  | "MPI_Allreduce" -> [ "REDALL" ]
  | "MPI_Allgather" | "MPI_Allgatherv" -> [ "RED"; "MCAST" ]
  | "MPI_Alltoall" | "MPI_Alltoallv" -> [ "A2A" ]
  | "MPI_Neighbor_alltoall" -> [ "NBR_A2A" ]
  | "MPI_Neighbor_allgather" -> [ "NBR_AG" ]
  | "MPI_Reduce_scatter" -> List.init p (fun _ -> "RED")
  | _ -> [] (* communicator management, MPI_Finalize: Table 1 skips *)

let collector side =
  {
    Mpisim.Hooks.nil with
    on_p2p_match =
      (fun ~time:_ ~src ~dst ~tag ~bytes ~comm:_ ->
        let key = (src, dst, tag) in
        match Hashtbl.find_opt side.chans key with
        | Some l -> l := bytes :: !l
        | None -> Hashtbl.add side.chans key (ref [ bytes ]));
    on_collective_complete =
      (fun ~time:_ ~comm:_ ~name ~participants ->
        let parts = List.sort compare (Array.to_list participants) in
        (* singleton groups generate no code (Lower skips them) *)
        if List.length parts > 1 then
          List.iter
            (fun op ->
              let key = (op, parts) in
              match Hashtbl.find_opt side.colls key with
              | Some c -> incr c
              | None -> Hashtbl.add side.colls key (ref 1))
            (norm_ops ~p:(List.length parts) name));
  }

let sorted_chans s =
  Hashtbl.fold (fun k v acc -> (k, List.rev !v) :: acc) s.chans []
  |> List.sort compare

let sorted_colls s =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) s.colls [] |> List.sort compare

let bytes_sig l =
  String.concat "," (List.map string_of_int l)

let parts_sig l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

(* First discrepancy between two sorted association lists, reported
   through [pp_key]. *)
let rec assoc_diff pp_key pp_val a b =
  match (a, b) with
  | [], [] -> None
  | (k, v) :: _, [] ->
      Some
        (Printf.sprintf "%s (%s) missing from the reproduction" (pp_key k)
           (pp_val v))
  | [], (k, v) :: _ ->
      Some
        (Printf.sprintf "%s (%s) absent from the original" (pp_key k)
           (pp_val v))
  | (ka, va) :: ta, (kb, vb) :: tb ->
      if ka < kb then
        Some
          (Printf.sprintf "%s (%s) missing from the reproduction" (pp_key ka)
             (pp_val va))
      else if kb < ka then
        Some
          (Printf.sprintf "%s (%s) absent from the original" (pp_key kb)
             (pp_val vb))
      else if va <> vb then
        Some
          (Printf.sprintf "%s: original %s, reproduction %s" (pp_key ka)
             (pp_val va) (pp_val vb))
      else assoc_diff pp_key pp_val ta tb

let chan_key (src, dst, tag) = Printf.sprintf "%d->%d tag %d" src dst tag
let coll_key (op, parts) = Printf.sprintf "%s %s" op (parts_sig parts)

let compare_sides ~side_name ~original ~reproduction =
  match
    assoc_diff chan_key bytes_sig (sorted_chans original)
      (sorted_chans reproduction)
  with
  | Some detail -> Error (V_channels { side = side_name; detail })
  | None -> (
      match
        assoc_diff coll_key string_of_int (sorted_colls original)
          (sorted_colls reproduction)
      with
      | Some detail -> Error (V_collectives { side = side_name; detail })
      | None -> Ok ())

(* ------------------------------------------------------------------ *)
(* The property                                                        *)

type stats = { s_channels : int; s_messages : int; s_collectives : int }

let stats_of side =
  {
    s_channels = Hashtbl.length side.chans;
    s_messages =
      Hashtbl.fold (fun _ l acc -> acc + List.length !l) side.chans 0;
    s_collectives = Hashtbl.fold (fun _ c acc -> acc + !c) side.colls 0;
  }

(* Generous watchdog: a faithful run is tiny; a wedged one must not hang
   the campaign. *)
let budget_events (p : Gen.prog) =
  20_000 + (p.nranks * p.nranks * p.reps * (List.length p.phases + 2) * 64)

let guard side_name f =
  match f () with
  | exception Mpisim.Engine.Deadlock m ->
      Error (V_replay { side = side_name; detail = "deadlock: " ^ m })
  | exception Mpisim.Engine.Stalled m ->
      Error (V_replay { side = side_name; detail = "stalled: " ^ m })
  | exception Mpisim.Engine.Mpi_error m ->
      Error (V_replay { side = side_name; detail = "MPI error: " ^ m })
  | exception Conceptual.Lower.Lower_error m ->
      Error (V_replay { side = side_name; detail = "lowering: " ^ m })
  | exception Replay.Replay_error m ->
      Error (V_replay { side = side_name; detail = "replay: " ^ m })
  | v -> Ok v

let ( let* ) = Result.bind

let check ?defect ?(coll_alg : Mpisim.Coll_alg.t = `Monolithic)
    (prog : Gen.prog) =
  let* () = Result.map_error (fun m -> V_invalid m) (Gen.validate prog) in
  let app = Gen.to_app prog in
  let nranks = prog.nranks in
  let max_events = budget_events prog in
  (* side 1: the original application, observed directly *)
  let original = new_side () in
  let* _ =
    Result.map_error
      (function
        | V_replay { detail; _ } -> V_original detail | v -> v)
      (guard "original" (fun () ->
           Mpisim.Mpi.run ~hooks:[ collector original ] ~max_events ~coll_alg
             ~nranks app))
  in
  (* the pipeline under test *)
  let cfg =
    {
      Pipeline.default with
      name = Some "check";
      max_events = Some max_events;
      defect;
      coll_alg;
    }
  in
  let* artifact, _warnings =
    match Pipeline.run cfg (Pipeline.From_app { nranks; app }) with
    | Ok v -> Ok v
    | Error e -> Error (V_pipeline_error (Pipeline.error_to_string e))
    | exception e -> Error (V_pipeline_error (Printexc.to_string e))
  in
  (* the emitted text must parse back to the same program *)
  let report = artifact.Pipeline.report in
  let* reparsed =
    match Conceptual.Parse.program report.Pipeline.text with
    | exception Conceptual.Parse.Parse_error m ->
        Error (V_roundtrip ("parse error: " ^ m))
    | p when not (Conceptual.Ast.equal report.Pipeline.program p) ->
        Error (V_roundtrip "re-parsed program differs from the generated AST")
    | p -> Ok p
  in
  (* side 2: the resolved trace replayed on the simulator (ScalaReplay) *)
  let replayed = new_side () in
  let* _ =
    guard "trace replay" (fun () ->
        Replay.run ~hooks:[ collector replayed ] ~max_events ~coll_alg
          artifact.Pipeline.resolved_trace)
  in
  let* () = compare_sides ~side_name:"trace replay" ~original ~reproduction:replayed in
  (* side 3: the generated benchmark, lowered and run *)
  let generated = new_side () in
  let* _ =
    guard "generated benchmark" (fun () ->
        Conceptual.Lower.run ~hooks:[ collector generated ] ~max_events
          ~coll_alg ~nranks reparsed)
  in
  let* () =
    compare_sides ~side_name:"generated benchmark" ~original
      ~reproduction:generated
  in
  Ok (stats_of original)
