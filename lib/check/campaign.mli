(** Seeded fuzzing campaigns: drive {!Gen} → {!Oracle} → {!Shrink} over a
    seed range, minimize and serialize every counterexample, and
    aggregate a report into an {!Obs.Metrics.t} registry (dumpable as
    JSONL) with per-case instants on the configured {!Obs.Sink.t}. *)

type config = {
  seed_start : int;  (** first seed (inclusive) *)
  seeds : int;  (** number of consecutive seeds to run *)
  defect : Benchgen.Pipeline.defect option;
      (** deliberately break the pipeline under test *)
  out_dir : string option;
      (** where to write counterexamples ([cx-<seed>.prog] plus a
          [latest.prog] alias); created if missing *)
  time_budget_s : float option;
      (** wall-clock budget ({!Util.Clock.monotonic_s}, the same clock
          serve-mode deadlines use): stop starting new cases once it is
          exhausted, and interrupt an in-progress shrink before its next
          oracle evaluation *)
  max_shrink_steps : int;  (** oracle-evaluation budget per shrink *)
  sink : Obs.Sink.t;  (** per-case instants (category ["fuzz"]) *)
  log : string -> unit;  (** progress lines (violations, shrinking) *)
  coll_alg : Mpisim.Coll_alg.t;
      (** collective algorithm for every oracle evaluation (default
          [`Monolithic]); for the systematic per-algorithm sweep see
          {!Collfuzz} *)
  gen_mode : Gen.mode;
      (** generator bias (default [`Mixed]); [`Neighbor] redirects half
          the phase draws to neighborhood collectives *)
}

(** 100 seeds from 1, no defect, no output directory, no budget,
    silent, monolithic collectives. *)
val default : config

type counterexample = {
  cx_seed : int;
  cx_violation : Oracle.violation;  (** the minimized program's violation *)
  cx_prog : Gen.prog;  (** minimized *)
  cx_shrink_steps : int;
  cx_path : string option;  (** where it was written, if [out_dir] was set *)
}

type summary = {
  cases : int;  (** seeds actually run *)
  passed : int;
  skipped : int;  (** seeds not run: time budget exhausted *)
  counterexamples : counterexample list;
  metrics : Obs.Metrics.t;
      (** [fuzz.cases{result}], [fuzz.violations{kind}],
          [fuzz.shrink_evals], [fuzz.messages], [fuzz.collectives],
          [fuzz.elapsed_s] *)
}

(** Deterministic apart from [fuzz.elapsed_s] and time-budget cutoffs:
    the same seed range and defect always yield the same counterexample
    files. *)
val run : config -> summary
