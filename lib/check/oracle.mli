(** The differential semantic oracle.

    [check prog] runs [prog] three ways — the original application
    directly, the pipeline's resolved trace under {!Replay}, and the
    generated coNCePTuaL benchmark re-parsed from its pretty-printed text
    and lowered back onto the simulator — and demands that all three
    agree on:

    - {b per-channel happens-before order}: for every (sender, receiver,
      tag) channel, the ordered sequence of message sizes at match time.
      Per-channel matching is FIFO, so this is the sender's program order
      — deterministic on every side.  It subsumes per-pair message counts
      and byte volumes.  Cross-channel interleaving at a receiver is
      timing, not semantics, and is not compared.
    - {b collective participation}: the multiset of completed collectives
      as (operation, sorted world participants), with the operations of
      both runs normalized through the Table 1 substitutions (MPI_Gather
      and its generated MPI_Reduce both read as ["RED"], etc.) and
      singleton-group collectives dropped (the lowering skips them).

    The pretty-printed text must also re-parse to the generated AST, and
    the pipeline itself must succeed: a typed [gen_error] (as provoked by
    {!Benchgen.Pipeline.defect.D_skip_wildcard}) is a violation too. *)

type violation =
  | V_invalid of string  (** the program broke {!Gen.validate} *)
  | V_original of string  (** the original run itself failed: generator bug *)
  | V_pipeline_error of string  (** {!Benchgen.Pipeline.run} returned [Error] *)
  | V_roundtrip of string  (** pretty-printed text did not re-parse to the AST *)
  | V_replay of { side : string; detail : string }
      (** a reproduction run deadlocked, stalled, or raised *)
  | V_channels of { side : string; detail : string }
      (** per-channel count/bytes/order mismatch *)
  | V_collectives of { side : string; detail : string }
      (** collective participant-multiset mismatch *)

(** Stable short name for metrics labels. *)
val kind : violation -> string

val to_string : violation -> string

(** What a passing run observed (of the original side). *)
type stats = { s_channels : int; s_messages : int; s_collectives : int }

(** {1 Observation API}

    The oracle's observation machinery, exported so other differential
    harnesses (notably {!Collfuzz}, which sweeps collective algorithms)
    can collect and compare the same semantic signature: per-channel FIFO
    byte sequences and the Table-1-normalized collective participant
    multiset.  Both observations are timing-independent, which is exactly
    what makes them usable as an equivalence oracle across
    {!Mpisim.Coll_alg} strategies that only move completion times. *)

(** One run's observations. *)
type side

val new_side : unit -> side

(** The hook that populates [side]; pass to any simulator entry point. *)
val collector : side -> Mpisim.Hooks.t

(** First semantic discrepancy between two observed runs, as a
    [V_channels] or [V_collectives] violation naming [side_name]. *)
val compare_sides :
  side_name:string ->
  original:side ->
  reproduction:side ->
  (unit, violation) result

val stats_of : side -> stats

(** {1 The property} *)

(** Run the property.  Deterministic: same [prog], [defect], and
    [coll_alg] always yield the same result.  [defect] deliberately
    breaks the pipeline under test ({!Benchgen.Pipeline.defect}); with
    the default [None] the production pipeline is checked.  [coll_alg]
    (default [`Monolithic]) selects the collective algorithm for all
    three sides, so the 3-way property can be asserted under every
    schedule strategy. *)
val check :
  ?defect:Benchgen.Pipeline.defect ->
  ?coll_alg:Mpisim.Coll_alg.t ->
  Gen.prog ->
  (stats, violation) result
