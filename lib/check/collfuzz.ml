type violation = { v_case : string; v_alg : string; v_what : string }

type config = {
  seed_start : int;
  seeds : int;
  apps : string list;
  nranks : int;
  log : string -> unit;
}

let default =
  {
    seed_start = 1;
    seeds = 40;
    apps = List.map (fun (a : Apps.Registry.app) -> a.name) Apps.Registry.all;
    nranks = 8;
    log = ignore;
  }

type summary = {
  cases : int;
  apps_checked : int;
  gen_checked : int;
  violations : violation list;
  metrics : Obs.Metrics.t;
}

(* The strategies under test: every schedule expander plus the `Auto
   selector, each compared against the `Monolithic reference. *)
let under_test : Mpisim.Coll_alg.t list =
  (Mpisim.Coll_alg.schedules :> Mpisim.Coll_alg.t list) @ [ `Auto ]

(* One run of [app]: oracle observations, raw completion-event count, and
   virtual elapsed time.  [max_events] keeps a buggy schedule from turning
   into an unbounded run. *)
let observe_app ~coll_alg ~nranks app =
  let side = Oracle.new_side () in
  let completions = ref 0 in
  let counter =
    {
      Mpisim.Hooks.nil with
      on_collective_complete =
        (fun ~time:_ ~comm:_ ~name:_ ~participants:_ -> incr completions);
    }
  in
  let outcome =
    Mpisim.Mpi.run
      ~hooks:[ Oracle.collector side; counter ]
      ~max_events:5_000_000 ~coll_alg ~nranks app
  in
  (side, !completions, outcome.Mpisim.Engine.elapsed)

let run cfg =
  let metrics = Obs.Metrics.create () in
  let violations = ref [] in
  let cases = ref 0 in
  let alg_label a = [ ("alg", Mpisim.Coll_alg.name a) ] in
  let violate ~case ~alg what =
    cfg.log (Printf.sprintf "%s under %s: %s" case (Mpisim.Coll_alg.name alg) what);
    Obs.Metrics.inc metrics ~labels:(alg_label alg) "collalg.violations";
    violations :=
      { v_case = case; v_alg = Mpisim.Coll_alg.name alg; v_what = what }
      :: !violations
  in
  (* --- registry sweep: each app, each strategy, vs `Monolithic ------- *)
  let elapsed_ratios = Hashtbl.create 8 in
  let apps =
    List.map
      (fun name ->
        match Apps.Registry.find name with
        | Some a -> a
        | None -> invalid_arg (Printf.sprintf "collfuzz: unknown app %S" name))
      cfg.apps
  in
  List.iter
    (fun (app : Apps.Registry.app) ->
      let nranks = Apps.Registry.fit_nranks app ~wanted:cfg.nranks in
      let case = "app:" ^ app.name in
      let reference, ref_completions, ref_elapsed =
        observe_app ~coll_alg:`Monolithic ~nranks (app.program ())
      in
      List.iter
        (fun alg ->
          incr cases;
          Obs.Metrics.inc metrics ~labels:(alg_label alg) "collalg.cases";
          match observe_app ~coll_alg:alg ~nranks (app.program ()) with
          | exception e ->
              violate ~case ~alg ("run failed: " ^ Printexc.to_string e)
          | side, completions, elapsed ->
              (match
                 Oracle.compare_sides ~side_name:(Mpisim.Coll_alg.name alg)
                   ~original:reference ~reproduction:side
               with
              | Ok () -> ()
              | Error v -> violate ~case ~alg (Oracle.to_string v));
              if completions <> ref_completions then
                violate ~case ~alg
                  (Printf.sprintf
                     "completion events: monolithic fired %d, %s fired %d \
                      (must be one per logical collective)"
                     ref_completions (Mpisim.Coll_alg.name alg) completions);
              if ref_elapsed > 0. then (
                let cur =
                  Option.value ~default:[]
                    (Hashtbl.find_opt elapsed_ratios alg)
                in
                Hashtbl.replace elapsed_ratios alg
                  ((elapsed /. ref_elapsed) :: cur)))
        under_test)
    apps;
  List.iter
    (fun alg ->
      match Hashtbl.find_opt elapsed_ratios alg with
      | Some (_ :: _ as rs) ->
          let mean = List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs) in
          Obs.Metrics.set metrics ~labels:(alg_label alg)
            "collalg.elapsed_ratio" mean
      | _ -> ())
    under_test;
  (* --- generative sweep: the full 3-way oracle per strategy ---------- *)
  let gen_checked = ref 0 in
  for seed = cfg.seed_start to cfg.seed_start + cfg.seeds - 1 do
    let prog = Gen.generate ~seed in
    let case = "seed:" ^ string_of_int seed in
    incr gen_checked;
    List.iter
      (fun alg ->
        incr cases;
        Obs.Metrics.inc metrics ~labels:(alg_label alg) "collalg.cases";
        match Oracle.check ~coll_alg:alg prog with
        | Ok _ -> ()
        | Error v -> violate ~case ~alg (Oracle.to_string v))
      under_test
  done;
  {
    cases = !cases;
    apps_checked = List.length apps;
    gen_checked = !gen_checked;
    violations = List.rev !violations;
    metrics;
  }
