(** Seeded service fuzzer for the serve-mode supervisor and worker
    pool ([benchgen fuzz --mode serve [--workers N]]).

    With [workers = 1] each seed builds a deterministic single-worker
    scenario: a supervisor on a virtual clock with a small random
    queue bound and retry policy, a synthetic job runner (the serve
    analogue of the pipeline [defect] seam) drawing jobs from six
    kinds — clean, flaky (fails until recovery escalates to
    best-effort), fatal (always fails), hanging (exceeds its deadline
    and is killed), crashing (raises into the supervisor), and
    oversized/garbage request lines — and a random interleaving of
    submissions, job executions, health probes, and a final drain or
    shutdown.

    With [workers > 1] each seed drives a {!Serve.Pool} through
    {!Serve.Pool.Sim} on virtual time: crashing and hanging jobs
    interleaved across workers (including [C_crash_once], which kills
    its first worker and then succeeds on the retry, and [C_poison],
    which kills every worker it touches and must be quarantined),
    out-of-band worker-kill injections, health probes, and a final
    drain or shutdown.  The transcript is timestamped, so determinism
    also pins the virtual schedule (dispatch order, restart backoff,
    breaker trips).

    The contract asserted on the full transcript is the same in both
    modes:
    - {b typed responses only}: every emitted line re-parses as a
      {!Serve.Protocol.response} and round-trips byte-identically;
    - {b no lost jobs}: every accepted submission gets exactly one
      terminal response (result or cancelled); every rejected one gets
      none;
    - {b bounded queue}: the queue never exceeds its configured limit
      (high-water checked via the [serve.queue_depth_max] gauge);
    - {b clean drain}: after drain/shutdown no live jobs remain and
      the summary's counts agree with the responses seen;
    - {b determinism}: the same seed produces a byte-identical
      transcript (each scenario is run twice and compared). *)

type config = {
  seed_start : int;
  seeds : int;
  workers : int;  (** 1 = single-worker supervisor; >1 = pool scenarios *)
  log : string -> unit;
}

val default : config

type violation = { v_seed : int; v_what : string }

type summary = {
  cases : int;  (** scenarios run *)
  jobs : int;  (** total submissions across all scenarios *)
  violations : violation list;
  metrics : Obs.Metrics.t;  (** merged [serve.*] + [servefuzz.*] instruments *)
}

val run : config -> summary

(** The response transcript of one seed's scenario (one line per
    response, ["\n"]-terminated; timestamped when [workers > 1]) —
    exposed so tests can assert same-seed byte-equality directly. *)
val transcript : ?workers:int -> seed:int -> unit -> string
