(** Seeded service fuzzer for the serve-mode supervisor
    ([benchgen fuzz --mode serve]).

    Each seed builds a deterministic scenario: a supervisor on a
    virtual clock with a small random queue bound and retry policy, a
    synthetic job runner (the serve analogue of the pipeline [defect]
    seam) drawing jobs from six kinds — clean, flaky (fails until
    recovery escalates to best-effort), fatal (always fails), hanging
    (exceeds its deadline and is killed), crashing (raises into the
    supervisor), and oversized/garbage request lines — and a random
    interleaving of submissions, job executions, health probes, and a
    final drain or shutdown.

    The supervisor's contract is asserted on the full transcript:
    - {b typed responses only}: every emitted line re-parses as a
      {!Serve.Protocol.response} and round-trips byte-identically;
    - {b no lost jobs}: every accepted submission gets exactly one
      terminal response (result or cancelled); every rejected one gets
      none;
    - {b bounded queue}: the queue never exceeds its configured limit;
    - {b clean drain}: after drain/shutdown the queue is empty and the
      summary's counts agree with the responses seen;
    - {b determinism}: the same seed produces a byte-identical
      transcript (each scenario is run twice and compared). *)

type config = {
  seed_start : int;
  seeds : int;
  log : string -> unit;
}

val default : config

type violation = { v_seed : int; v_what : string }

type summary = {
  cases : int;  (** scenarios run *)
  jobs : int;  (** total submissions across all scenarios *)
  violations : violation list;
  metrics : Obs.Metrics.t;  (** merged [serve.*] + [servefuzz.*] instruments *)
}

val run : config -> summary

(** The response transcript of one seed's scenario (one line per
    response, ["\n"]-terminated) — exposed so tests can assert
    same-seed byte-equality directly. *)
val transcript : seed:int -> string
