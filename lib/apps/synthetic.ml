(* Synthetic microbenchmarks.

   Not part of the paper's evaluation suite, but first-class apps so the
   CLI, tests, and the scaling/extrapolation experiments can drive them:
   the paper's own Figure 2 ring, a 2-D periodic halo stencil (whose
   column-neighbour offset scales as sqrt p, exercising extrapolation),
   and a butterfly (log2 p stages of XOR partners — a trace whose shape
   legitimately varies with p). *)

open Mpisim

let ring_name = "ring"
let ring_supports p = p >= 2

let r_recv = Mpi.site ~label:"ring_recv" __POS__
let r_send = Mpi.site ~label:"ring_send" __POS__
let r_wait = Mpi.site ~label:"ring_wait" __POS__
let r_fin = Mpi.site ~label:"finalize" __POS__

let ring_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:ring_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let iters = max 1 (int_of_float (1000. *. Params.iter_scale cls)) in
  let bytes = max 64 (int_of_float (Params.size_scale cls *. 16384.)) in
  for _ = 1 to iters do
    let r = Mpi.irecv ~site:r_recv ctx ~src:(Call.Rank ((ctx.rank + n - 1) mod n)) ~bytes in
    let s = Mpi.isend ~site:r_send ctx ~dst:((ctx.rank + 1) mod n) ~bytes in
    ignore (Mpi.waitall ~site:r_wait ctx [ r; s ]);
    Params.compute rng ~mean:1e-5 ctx
  done;
  Mpi.finalize ~site:r_fin ctx

let stencil_name = "stencil2d"
let stencil_supports p = Decomp.is_square p && p >= 4

let s_recv = Mpi.site ~label:"halo_recv" __POS__
let s_send = Mpi.site ~label:"halo_send" __POS__
let s_wait = Mpi.site ~label:"halo_wait" __POS__
let s_norm = Mpi.site ~label:"norm" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

let stencil_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:stencil_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let px = int_of_float (sqrt (float_of_int n) +. 0.5) in
  let iters = max 1 (int_of_float (100. *. Params.iter_scale cls)) in
  let bytes = max 64 (int_of_float (Params.size_scale cls *. 65536. /. float_of_int px)) in
  for _ = 1 to iters do
    let nbrs =
      [ (ctx.rank + 1) mod n; (ctx.rank + n - 1) mod n;
        (ctx.rank + px) mod n; (ctx.rank + n - px) mod n ]
    in
    let rs = List.map (fun s -> Mpi.irecv ~site:s_recv ctx ~src:(Call.Rank s) ~bytes) nbrs in
    let ss = List.map (fun d -> Mpi.isend ~site:s_send ctx ~dst:d ~bytes) nbrs in
    ignore (Mpi.waitall ~site:s_wait ctx (rs @ ss));
    Params.compute rng ~mean:5e-5 ctx;
    Mpi.allreduce ~site:s_norm ctx ~bytes:8
  done;
  Mpi.finalize ~site:s_fin ctx

let butterfly_name = "butterfly"
let butterfly_supports p = Decomp.is_power_of_two p && p >= 2

let b_ex = Mpi.site ~label:"butterfly_exchange" __POS__
let b_fin = Mpi.site ~label:"finalize" __POS__

let butterfly_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:butterfly_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let iters = max 1 (int_of_float (50. *. Params.iter_scale cls)) in
  let bytes = max 64 (int_of_float (Params.size_scale cls *. 32768.)) in
  let stages =
    let rec go acc v = if v >= n then acc else go (acc + 1) (2 * v) in
    go 0 1
  in
  for _ = 1 to iters do
    for stage = 0 to stages - 1 do
      let partner = ctx.rank lxor (1 lsl stage) in
      ignore
        (Mpi.sendrecv ~site:b_ex ctx ~dst:partner ~send_bytes:bytes
           ~src:(Call.Rank partner) ~recv_bytes:bytes);
      Params.compute rng ~mean:2e-5 ctx
    done
  done;
  Mpi.finalize ~site:b_fin ctx

let hirsd_name = "hirsd"
let hirsd_supports p = p >= 2

let h_recv = Mpi.site ~label:"hirsd_recv" __POS__
let h_send = Mpi.site ~label:"hirsd_send" __POS__
let h_wait = Mpi.site ~label:"hirsd_wait" __POS__
let h_cls = Mpi.site ~label:"hirsd_class_exchange" __POS__
let h_sync = Mpi.site ~label:"hirsd_sync" __POS__
let h_fin = Mpi.site ~label:"finalize" __POS__

(* MG-class merge/align stress: a long sequence of structurally *distinct*
   phases (tag and size vary per phase) that loop compression cannot fold,
   so the global node list stays ~[phases] long — the high-RSD regime where
   a linear per-node merge scan goes superlinear.  Interspersed rank-class
   phases (run by one class of rank pairs at a time) make the per-rank
   streams diverge, forcing the merge to exercise its lookahead. *)
let hirsd_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:hirsd_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let phases = max 8 (int_of_float (1200. *. Params.iter_scale cls)) in
  for phase = 0 to phases - 1 do
    let bytes = 64 + (64 * (phase mod 97)) in
    let rq =
      Mpi.irecv ~site:h_recv ~tag:(Call.Tag phase) ctx
        ~src:(Call.Rank ((ctx.rank + n - 1) mod n))
        ~bytes
    in
    let sq = Mpi.isend ~site:h_send ~tag:phase ctx ~dst:((ctx.rank + 1) mod n) ~bytes in
    ignore (Mpi.waitall ~site:h_wait ctx [ rq; sq ]);
    (* pair-local burst only one rank class runs per phase; both ends of
       a pair share (rank/2), so the guard agrees and cannot deadlock.
       The burst is a run of structurally distinct exchanges, so the
       global node list carries long foreign-class gaps that the merge
       lookahead must skip over when the other classes are folded in. *)
    let partner = ctx.rank lxor 1 in
    if partner < n && (ctx.rank / 2) mod 4 = phase mod 4 then
      for j = 0 to 7 do
        ignore
          (Mpi.sendrecv ~site:h_cls ~tag:(phases + (8 * phase) + j) ctx
             ~dst:partner
             ~send_bytes:(32 + (16 * ((phase + j) mod 7)))
             ~src:(Call.Rank partner)
             ~recv_bytes:(32 + (16 * ((phase + j) mod 7))))
      done;
    if phase mod 32 = 31 then Mpi.allreduce ~site:h_sync ctx ~bytes:8;
    Params.compute rng ~mean:1e-6 ctx
  done;
  Mpi.finalize ~site:h_fin ctx

let amg_name = "amg"
let amg_supports p = p >= 2

let a_lvl = Mpi.site ~label:"amg_level_exchange" __POS__
let a_norm = Mpi.site ~label:"amg_norm" __POS__
let a_fin = Mpi.site ~label:"finalize" __POS__

(* AMG-like V-cycle: the active rank set halves at each coarser level
   (ranks divisible by 2^l) and the survivors run a sparse
   neighbor_alltoall whose stencil widens as the grid coarsens —
   level-dependent participant sets, offsets, and byte counts.  The
   restriction and prolongation sweeps visit the levels in opposite
   order, then the whole world agrees on a residual norm. *)
let amg_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:amg_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let cycles = max 1 (int_of_float (30. *. Params.iter_scale cls)) in
  let base_bytes = max 64 (int_of_float (Params.size_scale cls *. 32768.)) in
  let levels =
    let rec go l = if n lsr l >= 2 then go (l + 1) else l in
    go 0
  in
  let exchange level =
    let stride = 1 lsl level in
    if ctx.rank mod stride = 0 then begin
      let q = ((n - 1) / stride) + 1 in
      if q > 1 then begin
        let parts = Array.init q (fun i -> i * stride) in
        let me = ctx.rank / stride in
        let degree = min (level + 1) (q - 1) in
        let neighbors =
          List.init degree (fun o -> parts.((me + o + 1) mod q))
          |> List.sort_uniq compare |> Array.of_list
        in
        let bytes = max 32 (base_bytes lsr level) in
        Mpi.neighbor_alltoall ~site:a_lvl ~parts ctx ~neighbors
          ~bytes_per_neighbor:bytes;
        Params.compute rng ~mean:(2e-5 /. float_of_int stride) ctx
      end
    end
  in
  for _ = 1 to cycles do
    for l = 0 to levels - 1 do
      exchange l
    done;
    for l = levels - 1 downto 0 do
      exchange l
    done;
    Mpi.allreduce ~site:a_norm ctx ~bytes:8
  done;
  Mpi.finalize ~site:a_fin ctx

let kripke_name = "kripke"
let kripke_supports p = Decomp.is_square p && p >= 4

let k_recv = Mpi.site ~label:"kripke_sweep_recv" __POS__
let k_send = Mpi.site ~label:"kripke_sweep_send" __POS__
let k_flux = Mpi.site ~label:"kripke_flux_exchange" __POS__
let k_conv = Mpi.site ~label:"kripke_conv" __POS__
let k_fin = Mpi.site ~label:"finalize" __POS__

(* Kripke-like transport sweep: each iteration runs the four corner
   octants of a KBA wavefront in a data-dependent order drawn from an
   rng stream shared by every rank (split index [nranks], which no rank
   uses for its private jitter), so the phase structure varies by seed
   yet stays agreed and deadlock-free.  Octant message sizes are drawn
   from the same shared stream; a full-comm neighborhood flux exchange
   and a convergence allreduce close the iteration. *)
let kripke_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:kripke_name ~seed ~rank:ctx.rank in
  let dir_rng = Params.rng_for ~app:kripke_name ~seed ~rank:ctx.nranks in
  let n = ctx.nranks in
  let px = int_of_float (sqrt (float_of_int n) +. 0.5) in
  let ix = ctx.rank mod px and iy = ctx.rank / px in
  let iters = max 1 (int_of_float (40. *. Params.iter_scale cls)) in
  let base = max 64 (int_of_float (Params.size_scale cls *. 8192.)) in
  let dirs = [| (1, 1); (1, -1); (-1, 1); (-1, -1) |] in
  let inb x = x >= 0 && x < px in
  let at x y = (y * px) + x in
  for iter = 1 to iters do
    let order = Array.init 4 (fun i -> i) in
    Util.Rng.shuffle dir_rng order;
    Array.iter
      (fun d ->
        let sx, sy = dirs.(d) in
        let bytes = base + (32 * Util.Rng.int dir_rng 8) in
        if inb (ix - sx) then
          ignore
            (Mpi.recv ~site:k_recv ~tag:(Call.Tag d) ctx
               ~src:(Call.Rank (at (ix - sx) iy)) ~bytes);
        if inb (iy - sy) then
          ignore
            (Mpi.recv ~site:k_recv ~tag:(Call.Tag d) ctx
               ~src:(Call.Rank (at ix (iy - sy))) ~bytes);
        Params.compute rng ~mean:3e-5 ctx;
        if inb (ix + sx) then
          Mpi.send ~site:k_send ~tag:d ctx ~dst:(at (ix + sx) iy) ~bytes;
        if inb (iy + sy) then
          Mpi.send ~site:k_send ~tag:d ctx ~dst:(at ix (iy + sy)) ~bytes)
      order;
    let neighbors =
      [ (ctx.rank + 1) mod n; (ctx.rank + px) mod n ]
      |> List.sort_uniq compare |> Array.of_list
    in
    Mpi.neighbor_allgather ~site:k_flux ctx ~neighbors
      ~bytes:((base / 4) + 16);
    if iter mod 2 = 0 then Mpi.allreduce ~site:k_conv ctx ~bytes:8
  done;
  Mpi.finalize ~site:k_fin ctx

let laghos_name = "laghos"
let laghos_supports p = p >= 2

let l_recv = Mpi.site ~label:"laghos_halo_recv" __POS__
let l_send = Mpi.site ~label:"laghos_halo_send" __POS__
let l_wait = Mpi.site ~label:"laghos_halo_wait" __POS__
let l_dt = Mpi.site ~label:"laghos_dt" __POS__
let l_fct = Mpi.site ~label:"laghos_fct_exchange" __POS__
let l_step = Mpi.site ~label:"laghos_timestep_bcast" __POS__
let l_io = Mpi.site ~label:"laghos_io_gather" __POS__
let l_fin = Mpi.site ~label:"finalize" __POS__

(* Laghos-like mixed phases: every step interleaves a nonblocking
   corner-force halo, a world allreduce for the CFL timestep, a sparse
   FCT limiter exchange restricted to the even-rank participant set,
   and a timestep broadcast; every few steps the root gathers output.
   Exercises p2p, rooted/unrooted collectives, and a partial-set
   neighborhood collective in one per-rank stream. *)
let laghos_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:laghos_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let steps = max 1 (int_of_float (60. *. Params.iter_scale cls)) in
  let halo = max 64 (int_of_float (Params.size_scale cls *. 16384.)) in
  for step = 1 to steps do
    let up = (ctx.rank + 1) mod n and dn = (ctx.rank + n - 1) mod n in
    let rs =
      List.map
        (fun s -> Mpi.irecv ~site:l_recv ctx ~src:(Call.Rank s) ~bytes:halo)
        [ up; dn ]
    in
    let ss =
      List.map (fun d -> Mpi.isend ~site:l_send ctx ~dst:d ~bytes:halo) [ up; dn ]
    in
    ignore (Mpi.waitall ~site:l_wait ctx (rs @ ss));
    Params.compute rng ~mean:4e-5 ctx;
    Mpi.allreduce ~site:l_dt ctx ~bytes:8;
    (if ctx.rank mod 2 = 0 then
       let q = ((n - 1) / 2) + 1 in
       if q > 1 then begin
         let parts = Array.init q (fun i -> 2 * i) in
         let me = ctx.rank / 2 in
         let neighbors = [| parts.((me + 1) mod q) |] in
         Mpi.neighbor_alltoall ~site:l_fct ~parts ctx ~neighbors
           ~bytes_per_neighbor:(halo / 4)
       end);
    Mpi.bcast ~site:l_step ctx ~root:0 ~bytes:16;
    if step mod 4 = 0 then Mpi.gather ~site:l_io ctx ~root:0 ~bytes_per_rank:(halo / 8)
  done;
  Mpi.finalize ~site:l_fin ctx
