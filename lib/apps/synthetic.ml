(* Synthetic microbenchmarks.

   Not part of the paper's evaluation suite, but first-class apps so the
   CLI, tests, and the scaling/extrapolation experiments can drive them:
   the paper's own Figure 2 ring, a 2-D periodic halo stencil (whose
   column-neighbour offset scales as sqrt p, exercising extrapolation),
   and a butterfly (log2 p stages of XOR partners — a trace whose shape
   legitimately varies with p). *)

open Mpisim

let ring_name = "ring"
let ring_supports p = p >= 2

let r_recv = Mpi.site ~label:"ring_recv" __POS__
let r_send = Mpi.site ~label:"ring_send" __POS__
let r_wait = Mpi.site ~label:"ring_wait" __POS__
let r_fin = Mpi.site ~label:"finalize" __POS__

let ring_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:ring_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let iters = max 1 (int_of_float (1000. *. Params.iter_scale cls)) in
  let bytes = max 64 (int_of_float (Params.size_scale cls *. 16384.)) in
  for _ = 1 to iters do
    let r = Mpi.irecv ~site:r_recv ctx ~src:(Call.Rank ((ctx.rank + n - 1) mod n)) ~bytes in
    let s = Mpi.isend ~site:r_send ctx ~dst:((ctx.rank + 1) mod n) ~bytes in
    ignore (Mpi.waitall ~site:r_wait ctx [ r; s ]);
    Params.compute rng ~mean:1e-5 ctx
  done;
  Mpi.finalize ~site:r_fin ctx

let stencil_name = "stencil2d"
let stencil_supports p = Decomp.is_square p && p >= 4

let s_recv = Mpi.site ~label:"halo_recv" __POS__
let s_send = Mpi.site ~label:"halo_send" __POS__
let s_wait = Mpi.site ~label:"halo_wait" __POS__
let s_norm = Mpi.site ~label:"norm" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

let stencil_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:stencil_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let px = int_of_float (sqrt (float_of_int n) +. 0.5) in
  let iters = max 1 (int_of_float (100. *. Params.iter_scale cls)) in
  let bytes = max 64 (int_of_float (Params.size_scale cls *. 65536. /. float_of_int px)) in
  for _ = 1 to iters do
    let nbrs =
      [ (ctx.rank + 1) mod n; (ctx.rank + n - 1) mod n;
        (ctx.rank + px) mod n; (ctx.rank + n - px) mod n ]
    in
    let rs = List.map (fun s -> Mpi.irecv ~site:s_recv ctx ~src:(Call.Rank s) ~bytes) nbrs in
    let ss = List.map (fun d -> Mpi.isend ~site:s_send ctx ~dst:d ~bytes) nbrs in
    ignore (Mpi.waitall ~site:s_wait ctx (rs @ ss));
    Params.compute rng ~mean:5e-5 ctx;
    Mpi.allreduce ~site:s_norm ctx ~bytes:8
  done;
  Mpi.finalize ~site:s_fin ctx

let butterfly_name = "butterfly"
let butterfly_supports p = Decomp.is_power_of_two p && p >= 2

let b_ex = Mpi.site ~label:"butterfly_exchange" __POS__
let b_fin = Mpi.site ~label:"finalize" __POS__

let butterfly_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:butterfly_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let iters = max 1 (int_of_float (50. *. Params.iter_scale cls)) in
  let bytes = max 64 (int_of_float (Params.size_scale cls *. 32768.)) in
  let stages =
    let rec go acc v = if v >= n then acc else go (acc + 1) (2 * v) in
    go 0 1
  in
  for _ = 1 to iters do
    for stage = 0 to stages - 1 do
      let partner = ctx.rank lxor (1 lsl stage) in
      ignore
        (Mpi.sendrecv ~site:b_ex ctx ~dst:partner ~send_bytes:bytes
           ~src:(Call.Rank partner) ~recv_bytes:bytes);
      Params.compute rng ~mean:2e-5 ctx
    done
  done;
  Mpi.finalize ~site:b_fin ctx

let hirsd_name = "hirsd"
let hirsd_supports p = p >= 2

let h_recv = Mpi.site ~label:"hirsd_recv" __POS__
let h_send = Mpi.site ~label:"hirsd_send" __POS__
let h_wait = Mpi.site ~label:"hirsd_wait" __POS__
let h_cls = Mpi.site ~label:"hirsd_class_exchange" __POS__
let h_sync = Mpi.site ~label:"hirsd_sync" __POS__
let h_fin = Mpi.site ~label:"finalize" __POS__

(* MG-class merge/align stress: a long sequence of structurally *distinct*
   phases (tag and size vary per phase) that loop compression cannot fold,
   so the global node list stays ~[phases] long — the high-RSD regime where
   a linear per-node merge scan goes superlinear.  Interspersed rank-class
   phases (run by one class of rank pairs at a time) make the per-rank
   streams diverge, forcing the merge to exercise its lookahead. *)
let hirsd_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:hirsd_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let phases = max 8 (int_of_float (1200. *. Params.iter_scale cls)) in
  for phase = 0 to phases - 1 do
    let bytes = 64 + (64 * (phase mod 97)) in
    let rq =
      Mpi.irecv ~site:h_recv ~tag:(Call.Tag phase) ctx
        ~src:(Call.Rank ((ctx.rank + n - 1) mod n))
        ~bytes
    in
    let sq = Mpi.isend ~site:h_send ~tag:phase ctx ~dst:((ctx.rank + 1) mod n) ~bytes in
    ignore (Mpi.waitall ~site:h_wait ctx [ rq; sq ]);
    (* pair-local burst only one rank class runs per phase; both ends of
       a pair share (rank/2), so the guard agrees and cannot deadlock.
       The burst is a run of structurally distinct exchanges, so the
       global node list carries long foreign-class gaps that the merge
       lookahead must skip over when the other classes are folded in. *)
    let partner = ctx.rank lxor 1 in
    if partner < n && (ctx.rank / 2) mod 4 = phase mod 4 then
      for j = 0 to 7 do
        ignore
          (Mpi.sendrecv ~site:h_cls ~tag:(phases + (8 * phase) + j) ctx
             ~dst:partner
             ~send_bytes:(32 + (16 * ((phase + j) mod 7)))
             ~src:(Call.Rank partner)
             ~recv_bytes:(32 + (16 * ((phase + j) mod 7))))
      done;
    if phase mod 32 = 31 then Mpi.allreduce ~site:h_sync ctx ~bytes:8;
    Params.compute rng ~mean:1e-6 ctx
  done;
  Mpi.finalize ~site:h_fin ctx
