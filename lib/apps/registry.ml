type app = {
  name : string;
  description : string;
  supports : int -> bool;
  program : ?cls:Params.cls -> ?seed:int -> unit -> Mpisim.Mpi.ctx -> unit;
}

let all =
  [
    {
      name = Npb_bt.name;
      description = "block-tridiagonal solver (3-D stencil pipelines, square grid)";
      supports = Npb_bt.supports;
      program = Npb_bt.program;
    };
    {
      name = Npb_cg.name;
      description = "conjugate gradient (transpose exchange + row reductions)";
      supports = Npb_cg.supports;
      program = Npb_cg.program;
    };
    {
      name = Npb_ep.name;
      description = "embarrassingly parallel (compute + tiny allreduces)";
      supports = Npb_ep.supports;
      program = Npb_ep.program;
    };
    {
      name = Npb_ft.name;
      description = "3-D FFT (global transposes via alltoall)";
      supports = Npb_ft.supports;
      program = Npb_ft.program;
    };
    {
      name = Npb_is.name;
      description = "integer sort (allreduce + alltoall(v) key exchange)";
      supports = Npb_is.supports;
      program = Npb_is.program;
    };
    {
      name = Npb_lu.name;
      description = "SSOR solver (2-D wavefronts with MPI_ANY_SOURCE)";
      supports = Npb_lu.supports;
      program = Npb_lu.program;
    };
    {
      name = Npb_mg.name;
      description = "multigrid V-cycle (3-D halos across grid levels)";
      supports = Npb_mg.supports;
      program = Npb_mg.program;
    };
    {
      name = Npb_sp.name;
      description = "scalar pentadiagonal solver (BT-like, smaller messages)";
      supports = Npb_sp.supports;
      program = Npb_sp.program;
    };
    {
      name = Sweep3d.name;
      description = "KBA wavefront transport (rank-conditional collectives)";
      supports = Sweep3d.supports;
      program = Sweep3d.program;
    };
    {
      name = Synthetic.ring_name;
      description = "synthetic: the paper's Figure 2 nearest-neighbour ring";
      supports = Synthetic.ring_supports;
      program = Synthetic.ring_program;
    };
    {
      name = Synthetic.stencil_name;
      description = "synthetic: 2-D periodic halo stencil (square grid)";
      supports = Synthetic.stencil_supports;
      program = Synthetic.stencil_program;
    };
    {
      name = Synthetic.butterfly_name;
      description = "synthetic: log2(p)-stage XOR butterfly exchange";
      supports = Synthetic.butterfly_supports;
      program = Synthetic.butterfly_program;
    };
    {
      name = Synthetic.hirsd_name;
      description = "synthetic: high-RSD merge stress (distinct per-phase events)";
      supports = Synthetic.hirsd_supports;
      program = Synthetic.hirsd_program;
    };
    {
      name = Synthetic.amg_name;
      description = "irregular: AMG-like V-cycle (level-dependent sparse neighbor exchanges)";
      supports = Synthetic.amg_supports;
      program = Synthetic.amg_program;
    };
    {
      name = Synthetic.kripke_name;
      description = "irregular: Kripke-like sweep (data-dependent octant ordering, square grid)";
      supports = Synthetic.kripke_supports;
      program = Synthetic.kripke_program;
    };
    {
      name = Synthetic.laghos_name;
      description = "irregular: Laghos-like mixed p2p/collective/neighborhood phases";
      supports = Synthetic.laghos_supports;
      program = Synthetic.laghos_program;
    };
  ]

let paper_suite = List.filteri (fun i _ -> i < 9) all

let find name = List.find_opt (fun a -> a.name = name) all

let fit_nranks app ~wanted =
  let rec go n = if app.supports n then n else go (n + 1) in
  go (max 1 wanted)
