type binop = Add | Sub | Mul | Div | Mod

type expr =
  | Int of int
  | Float of float
  | Var of string
  | Bin of binop * expr * expr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | True
  | False
  | Cmp of cmp * expr * expr
  | Divides of expr * expr
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type tasks =
  | All of string option
  | Single of expr
  | Group of { var : string; pred : pred }

type agg = Mean | Median | Minimum | Maximum

type stmt =
  | Send of {
      src : tasks;
      async : bool;
      bytes : expr;
      dst : expr;
      tag : int;
      implicit_recv : bool;
    }
  | Receive of { dst : tasks; async : bool; bytes : expr; src : expr; tag : int }
  | Await of tasks
  | Sync of tasks
  | Multicast of { src : tasks; bytes : expr; dst : tasks }
  | Reduce of { src : tasks; bytes : expr; dst : tasks }
  | Alltoall of { tasks : tasks; bytes : expr }
  | Neighbor of { tasks : tasks; bytes : expr; offsets : int list; gather : bool }
  | Compute of { tasks : tasks; usecs : expr }
  | For of { count : expr; body : stmt list }
  | For_each of { var : string; first : expr; last : expr; body : stmt list }
  | If of { cond : pred; then_ : stmt list; else_ : stmt list }
  | Log of { tasks : tasks; agg : agg option; label : string }
  | Reset of tasks

type program = { comments : string list; body : stmt list }

type env = (string * int) list

exception Eval_error of string

let rec eval_int env = function
  | Int n -> n
  | Float f -> int_of_float (Float.round f)
  | Var v -> (
      match List.assoc_opt v env with
      | Some n -> n
      | None -> raise (Eval_error ("unbound variable " ^ v)))
  | Bin (op, a, b) -> (
      let x = eval_int env a and y = eval_int env b in
      match op with
      | Add -> x + y
      | Sub -> x - y
      | Mul -> x * y
      | Div -> if y = 0 then raise (Eval_error "division by zero") else x / y
      | Mod ->
          if y = 0 then raise (Eval_error "modulo by zero")
          else ((x mod y) + y) mod y)

let rec eval_float env = function
  | Int n -> float_of_int n
  | Float f -> f
  | Var v -> (
      match List.assoc_opt v env with
      | Some n -> float_of_int n
      | None -> raise (Eval_error ("unbound variable " ^ v)))
  | Bin (op, a, b) -> (
      let x = eval_float env a and y = eval_float env b in
      match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> if y = 0. then raise (Eval_error "division by zero") else x /. y
      | Mod -> Float.rem x y)

let rec eval_pred env = function
  | True -> true
  | False -> false
  | Cmp (op, a, b) -> (
      let x = eval_int env a and y = eval_int env b in
      match op with
      | Eq -> x = y
      | Ne -> x <> y
      | Lt -> x < y
      | Le -> x <= y
      | Gt -> x > y
      | Ge -> x >= y)
  | Divides (k, e) ->
      let k = eval_int env k and v = eval_int env e in
      if k = 0 then raise (Eval_error "0 DIVIDES")
      else v mod k = 0
  | And (a, b) -> eval_pred env a && eval_pred env b
  | Or (a, b) -> eval_pred env a || eval_pred env b
  | Not p -> not (eval_pred env p)

let binder = function
  | All v -> v
  | Single _ -> None
  | Group { var; _ } -> Some var

let mem tasks env ~rank ~nranks =
  rank >= 0 && rank < nranks
  &&
  match tasks with
  | All _ -> true
  | Single e -> eval_int env e = rank
  | Group { var; pred } -> eval_pred ((var, rank) :: env) pred

let members tasks env ~nranks =
  List.filter
    (fun r -> mem tasks env ~rank:r ~nranks)
    (List.init nranks Fun.id)

let tasks_of_rank_set ?(var = "t") ~nranks set =
  if Util.Rank_set.equal set (Util.Rank_set.all nranks) then All (Some var)
  else
    match Util.Rank_set.to_list set with
    | [ r ] -> Single (Int r)
    | _ ->
        let t = Var var in
        let interval_pred (first, last, stride) =
          let base =
            if first = last then Cmp (Eq, t, Int first)
            else And (Cmp (Ge, t, Int first), Cmp (Le, t, Int last))
          in
          if stride = 1 || first = last then base
          else if first = 0 then And (base, Divides (Int stride, t))
          else And (base, Divides (Int stride, Bin (Sub, t, Int first)))
        in
        let pred =
          match Util.Rank_set.intervals set with
          | [] -> False
          | iv :: rest ->
              List.fold_left
                (fun acc iv -> Or (acc, interval_pred iv))
                (interval_pred iv) rest
        in
        Group { var; pred }

let rec map_stmt f s =
  let s =
    match s with
    | For r -> For { r with body = List.map (map_stmt f) r.body }
    | For_each r -> For_each { r with body = List.map (map_stmt f) r.body }
    | If r ->
        If
          {
            r with
            then_ = List.map (map_stmt f) r.then_;
            else_ = List.map (map_stmt f) r.else_;
          }
    | Send _ | Receive _ | Await _ | Sync _ | Multicast _ | Reduce _
    | Alltoall _ | Neighbor _ | Compute _ | Log _ | Reset _ ->
        s
  in
  f s

let map_stmts f p = { p with body = List.map (map_stmt f) p.body }

let rec fold_stmt f acc s =
  let acc = f acc s in
  match s with
  | For { body; _ } | For_each { body; _ } -> List.fold_left (fold_stmt f) acc body
  | If { then_; else_; _ } ->
      List.fold_left (fold_stmt f) (List.fold_left (fold_stmt f) acc then_) else_
  | Send _ | Receive _ | Await _ | Sync _ | Multicast _ | Reduce _ | Alltoall _
  | Neighbor _ | Compute _ | Log _ | Reset _ ->
      acc

let fold_stmts f acc p = List.fold_left (fold_stmt f) acc p.body

let size p = fold_stmts (fun n _ -> n + 1) 0 p

let equal (a : program) (b : program) = a = b
