open Ast
module A = Ast

(* Expression precedence: additive 1, multiplicative 2, atoms 3. *)
let prec_of = function
  | Bin ((Add | Sub), _, _) -> 1
  | Bin ((Mul | Div | Mod), _, _) -> 2
  | Int _ | Float _ | Var _ -> 3

(* Shortest representation that parses back to exactly the same float, so
   generated programs round-trip bit-for-bit. *)
let float_literal f =
  let pick fmt = Printf.sprintf fmt f in
  let s =
    let s9 = pick "%.9g" in
    if float_of_string s9 = f then s9
    else
      let s12 = pick "%.12g" in
      if float_of_string s12 = f then s12 else pick "%.17g"
  in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s else s ^ ".0"

let rec expr_prec level e =
  let s =
    match e with
    | Int n -> string_of_int n
    | Float f -> float_literal f
    | Var v -> v
    | Bin (op, a, b) ->
        let my = prec_of e in
        let op_s =
          match op with
          | Add -> "+"
          | Sub -> "-"
          | Mul -> "*"
          | Div -> "/"
          | Mod -> "MOD"
        in
        (* left-associative: right child needs strictly higher precedence *)
        Printf.sprintf "%s %s %s" (expr_prec my a) op_s (expr_prec (my + 1) b)
  in
  if prec_of e < level then "(" ^ s ^ ")" else s

let expr e = expr_prec 0 e

let cmp_op = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Predicate precedence: OR 1, AND 2, NOT 3, atoms 4. *)
let pred_prec_of = function
  | Or _ -> 1
  | And _ -> 2
  | Not _ -> 3
  | True | False | Cmp _ | Divides _ -> 4

let rec pred_prec level p =
  let s =
    match p with
    | True -> "TRUE"
    | False -> "FALSE"
    | Cmp (op, a, b) -> Printf.sprintf "%s %s %s" (expr a) (cmp_op op) (expr b)
    | Divides (k, e) -> Printf.sprintf "%s DIVIDES %s" (expr k) (expr e)
    | And (a, b) -> Printf.sprintf "%s AND %s" (pred_prec 2 a) (pred_prec 3 b)
    | Or (a, b) -> Printf.sprintf "%s OR %s" (pred_prec 1 a) (pred_prec 2 b)
    | Not a -> Printf.sprintf "NOT %s" (pred_prec 3 a)
  in
  if pred_prec_of p < level then "(" ^ s ^ ")" else s

let pred p = pred_prec 0 p

let tasks = function
  | All None -> "ALL TASKS"
  | All (Some v) -> "ALL TASKS " ^ v
  | Single e -> "TASK " ^ expr_prec 3 e
  | Group { var; pred = p } -> Printf.sprintf "TASKS %s SUCH THAT %s" var (pred p)

(* Singular subjects conjugate their verb: "TASK 0 MULTICASTS". *)
let is_singular = function Single _ -> true | All _ | Group _ -> false

let verb t base = if is_singular t then base ^ "S" else base

let buf_add_indented buf depth s =
  Buffer.add_string buf (String.make (2 * depth) ' ');
  Buffer.add_string buf s

let rec stmt_lines buf depth s =
  match s with
  | Send { src; async; bytes; dst; tag; implicit_recv } ->
      let tag_s = if tag = 0 then "" else Printf.sprintf " USING TAG %d" tag in
      buf_add_indented buf depth
        (Printf.sprintf "%s %s%s A %s BYTE MESSAGE TO TASK %s%s%s" (tasks src)
           (if async then "ASYNCHRONOUSLY " else "")
           (verb src "SEND") (expr bytes) (expr_prec 3 dst) tag_s
           (if implicit_recv then "" else " WITH NO IMPLICIT RECEIVE"))
  | Receive { dst; async; bytes; src; tag } ->
      let tag_s =
        if tag = 0 then ""
        else if tag < 0 then " USING ANY TAG"
        else Printf.sprintf " USING TAG %d" tag
      in
      buf_add_indented buf depth
        (Printf.sprintf "%s %s%s A %s BYTE MESSAGE FROM TASK %s%s" (tasks dst)
           (if async then "ASYNCHRONOUSLY " else "")
           (verb dst "RECEIVE") (expr bytes) (expr_prec 3 src) tag_s)
  | Await t ->
      buf_add_indented buf depth
        (Printf.sprintf "%s %s COMPLETION" (tasks t) (verb t "AWAIT"))
  | Sync t ->
      buf_add_indented buf depth
        (Printf.sprintf "%s %s" (tasks t) (verb t "SYNCHRONIZE"))
  | Multicast { src; bytes; dst } ->
      buf_add_indented buf depth
        (Printf.sprintf "%s %s A %s BYTE MESSAGE TO %s" (tasks src)
           (verb src "MULTICAST") (expr bytes) (tasks dst))
  | Reduce { src; bytes; dst } ->
      buf_add_indented buf depth
        (Printf.sprintf "%s %s A %s BYTE MESSAGE TO %s" (tasks src)
           (verb src "REDUCE") (expr bytes) (tasks dst))
  | Alltoall { tasks = t; bytes } ->
      buf_add_indented buf depth
        (Printf.sprintf "%s %s A %s BYTE MESSAGE TO ALL OTHER TASKS" (tasks t)
           (verb t "SEND") (expr bytes))
  | Neighbor { tasks = t; bytes; offsets; gather } ->
      let offs = String.concat ", " (List.map string_of_int offsets) in
      buf_add_indented buf depth
        (if gather then
           Printf.sprintf "%s %s A %s BYTE MESSAGE FROM NEIGHBORS AT OFFSETS %s"
             (tasks t) (verb t "GATHER") (expr bytes) offs
         else
           Printf.sprintf "%s %s A %s BYTE MESSAGE WITH NEIGHBORS AT OFFSETS %s"
             (tasks t) (verb t "EXCHANGE") (expr bytes) offs)
  | Compute { tasks = t; usecs } ->
      buf_add_indented buf depth
        (Printf.sprintf "%s %s FOR %s MICROSECONDS" (tasks t) (verb t "COMPUTE")
           (expr usecs))
  | For { count; body } ->
      buf_add_indented buf depth
        (Printf.sprintf "FOR %s REPETITIONS {" (expr count));
      block buf depth body
  | For_each { var; first; last; body } ->
      buf_add_indented buf depth
        (Printf.sprintf "FOR EACH %s IN {%s, ..., %s} {" var (expr first)
           (expr last));
      block buf depth body
  | If { cond; then_; else_ } ->
      buf_add_indented buf depth (Printf.sprintf "IF %s THEN {" (pred cond));
      block buf depth then_;
      if else_ <> [] then begin
        (* rewrite the closing brace into "} ELSE {" *)
        let len = Buffer.length buf in
        let content = Buffer.sub buf 0 len in
        Buffer.clear buf;
        Buffer.add_string buf content;
        Buffer.add_string buf " ELSE {";
        block buf depth else_
      end
  | Log { tasks = t; agg; label } ->
      let agg_s =
        match agg with
        | None -> ""
        | Some A.Mean -> "THE MEAN OF "
        | Some A.Median -> "THE MEDIAN OF "
        | Some A.Minimum -> "THE MINIMUM OF "
        | Some A.Maximum -> "THE MAXIMUM OF "
      in
      buf_add_indented buf depth
        (Printf.sprintf "%s %s %selapsed_usecs AS \"%s\"" (tasks t) (verb t "LOG")
           agg_s label)
  | Reset t ->
      buf_add_indented buf depth
        (Printf.sprintf "%s %s THEIR COUNTERS" (tasks t) (verb t "RESET"))

and block buf depth body =
  Buffer.add_char buf '\n';
  seq buf (depth + 1) body;
  Buffer.add_char buf '\n';
  buf_add_indented buf depth "}"

and seq buf depth body =
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf " THEN\n";
      stmt_lines buf depth s)
    body

let stmt s =
  let buf = Buffer.create 128 in
  stmt_lines buf 0 s;
  Buffer.contents buf

let program (p : program) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      Buffer.add_string buf ("# " ^ c);
      Buffer.add_char buf '\n')
    p.comments;
  seq buf 0 p.body;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let pp_program ppf p = Format.pp_print_string ppf (program p)
