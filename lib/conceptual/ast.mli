(** Abstract syntax of our coNCePTuaL-style specification language.

    The language covers the subset of coNCePTuaL (Pakin, TPDS'07) that the
    benchmark generator targets: point-to-point sends/receives (blocking or
    asynchronous), AWAIT COMPLETION, SYNCHRONIZE, REDUCE and MULTICAST
    collectives over arbitrary task groups, COMPUTE delays, counted and
    ranged loops, conditionals, and counter logging.  Programs are
    expressed in absolute task (world rank) numbers only — communicators
    never appear, exactly as in the paper's generated benchmarks. *)

type binop = Add | Sub | Mul | Div | Mod

type expr =
  | Int of int
  | Float of float
  | Var of string
  | Bin of binop * expr * expr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | True
  | False
  | Cmp of cmp * expr * expr
  | Divides of expr * expr  (** [Divides (k, e)]: k evenly divides e *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

(** A set of tasks, optionally binding a task variable usable in contained
    expressions. *)
type tasks =
  | All of string option  (** ALL TASKS / ALL TASKS t *)
  | Single of expr  (** TASK e *)
  | Group of { var : string; pred : pred }  (** TASKS t SUCH THAT pred *)

(** Aggregations usable in LOG statements. *)
type agg = Mean | Median | Minimum | Maximum

type stmt =
  | Send of {
      src : tasks;
      async : bool;
      bytes : expr;
      dst : expr;  (** may reference [src]'s task variable *)
      tag : int;  (** message channel ("USING TAG n"); 0 is the default.
                      An extension over real coNCePTuaL, needed to keep
                      independent message streams between the same pair of
                      tasks from cross-matching. *)
      implicit_recv : bool;
          (** when true the destination implicitly posts the matching
              receive (plain coNCePTuaL style); the generator emits
              explicit receives and sets this to false *)
    }
  | Receive of {
      dst : tasks;
      async : bool;
      bytes : expr;
      src : expr;
      tag : int;  (** -1 accepts any channel ("USING ANY TAG") *)
    }
  | Await of tasks  (** AWAIT COMPLETION of all outstanding async ops *)
  | Sync of tasks  (** SYNCHRONIZE: barrier over the group *)
  | Multicast of { src : tasks; bytes : expr; dst : tasks }
      (** one/many-to-many fan-out; [src] must select one task *)
  | Reduce of { src : tasks; bytes : expr; dst : tasks }
      (** many-to-one/many fan-in; reduce-to-all when [dst] equals [src] *)
  | Alltoall of { tasks : tasks; bytes : expr }
      (** every group member exchanges [bytes] with every other *)
  | Neighbor of { tasks : tasks; bytes : expr; offsets : int list; gather : bool }
      (** sparse neighborhood collective over the group: each member
          exchanges ([gather = false]) or gathers from ([gather = true])
          the neighbors at the given positive relative [offsets] in
          group-position space, cyclically *)
  | Compute of { tasks : tasks; usecs : expr }  (** COMPUTES FOR n MICROSECONDS *)
  | For of { count : expr; body : stmt list }  (** FOR n REPETITIONS *)
  | For_each of { var : string; first : expr; last : expr; body : stmt list }
  | If of { cond : pred; then_ : stmt list; else_ : stmt list }
  | Log of { tasks : tasks; agg : agg option; label : string }
      (** LOG \[THE MEDIAN OF\] elapsed_usecs AS "label"; the aggregate,
          when present, combines the values a task logs across
          repetitions *)
  | Reset of tasks  (** RESET THEIR COUNTERS *)

type program = { comments : string list; body : stmt list }

(** {1 Evaluation} *)

type env = (string * int) list

exception Eval_error of string

(** Integer evaluation; [Float] literals round.  @raise Eval_error on
    unbound variables or division by zero. *)
val eval_int : env -> expr -> int

val eval_float : env -> expr -> float
val eval_pred : env -> pred -> bool

(** [mem tasks env ~rank ~nranks] — does [rank] belong to the set?  The
    set's binder (if any) is bound to [rank] while evaluating. *)
val mem : tasks -> env -> rank:int -> nranks:int -> bool

(** Concrete members of a task set, ascending. *)
val members : tasks -> env -> nranks:int -> int list

(** Binder variable of a task set, if any. *)
val binder : tasks -> string option

(** {1 Construction helpers (used by the benchmark generator)} *)

(** Express a rank set as a [tasks] value: [All] when it covers
    [0..nranks-1], [Single] for singletons, otherwise a [Group] whose
    predicate encodes the set's strided intervals. *)
val tasks_of_rank_set : ?var:string -> nranks:int -> Util.Rank_set.t -> tasks

(** {1 Traversal} *)

(** Map every statement bottom-up (children first). *)
val map_stmts : (stmt -> stmt) -> program -> program

(** Fold over all statements (pre-order). *)
val fold_stmts : ('a -> stmt -> 'a) -> 'a -> program -> 'a

(** Number of statements (loop bodies counted once). *)
val size : program -> int

val equal : program -> program -> bool
