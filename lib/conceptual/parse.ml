exception Parse_error of string

type token =
  | KW of string (* uppercase keyword *)
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | SYM of string (* punctuation and operators *)
  | ELLIPSIS

let token_to_string = function
  | KW s | IDENT s | SYM s -> s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> "\"" ^ s ^ "\""
  | ELLIPSIS -> "..."

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let is_digit c = c >= '0' && c <= '9'
let is_upper c = c >= 'A' && c <= 'Z'
let is_lower c = (c >= 'a' && c <= 'z') || c = '_'
let is_word c = is_upper c || is_lower c || is_digit c

let lex input =
  let n = String.length input in
  let tokens = ref [] and lines = ref [] in
  let line = ref 1 in
  let emit t = tokens := t :: !tokens; lines := !line :: !lines in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      (* comment to end of line *)
      while !i < n && input.[!i] <> '\n' do incr i done
    end
    else if c = '.' && !i + 2 < n && input.[!i + 1] = '.' && input.[!i + 2] = '.'
    then begin
      emit ELLIPSIS;
      i := !i + 3
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do incr i done;
      let is_float = ref false in
      if !i < n && input.[!i] = '.' && not (!i + 1 < n && input.[!i + 1] = '.')
      then begin
        is_float := true;
        incr i;
        while !i < n && is_digit input.[!i] do incr i done
      end;
      if !i < n && (input.[!i] = 'e' || input.[!i] = 'E') then begin
        is_float := true;
        incr i;
        if !i < n && (input.[!i] = '+' || input.[!i] = '-') then incr i;
        while !i < n && is_digit input.[!i] do incr i done
      end;
      let s = String.sub input start (!i - start) in
      if !is_float then emit (FLOAT (float_of_string s))
      else emit (INT (int_of_string s))
    end
    else if is_upper c then begin
      let start = !i in
      while !i < n && is_word input.[!i] do incr i done;
      emit (KW (String.sub input start (!i - start)))
    end
    else if is_lower c then begin
      let start = !i in
      while !i < n && is_word input.[!i] do incr i done;
      emit (IDENT (String.sub input start (!i - start)))
    end
    else if c = '"' then begin
      incr i;
      let start = !i in
      while !i < n && input.[!i] <> '"' do incr i done;
      if !i >= n then raise (Parse_error "unterminated string literal");
      emit (STRING (String.sub input start (!i - start)));
      incr i
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" ->
          emit (SYM two);
          i := !i + 2
      | _ -> (
          match c with
          | '{' | '}' | '(' | ')' | ',' | '+' | '-' | '*' | '/' | '=' | '<' | '>' ->
              emit (SYM (String.make 1 c));
              incr i
          | _ ->
              raise
                (Parse_error
                   (Printf.sprintf "line %d: unexpected character %C" !line c)))
    end
  done;
  (Array.of_list (List.rev !tokens), Array.of_list (List.rev !lines))

(* ------------------------------------------------------------------ *)
(* Parser state: token array with explicit cursor (allows backtracking) *)

type st = { toks : token array; lns : int array; mutable pos : int }

let peek st = if st.pos < Array.length st.toks then Some st.toks.(st.pos) else None

let error st msg =
  let where =
    if st.pos < Array.length st.toks then
      Printf.sprintf "line %d near %s" st.lns.(st.pos)
        (token_to_string st.toks.(st.pos))
    else "at end of input"
  in
  raise (Parse_error (Printf.sprintf "%s (%s)" msg where))

let advance st = st.pos <- st.pos + 1

let accept st t =
  match peek st with
  | Some tok when tok = t ->
      advance st;
      true
  | _ -> false

let expect st t =
  if not (accept st t) then error st ("expected " ^ token_to_string t)

let accept_kw st names =
  match peek st with
  | Some (KW k) when List.mem k names ->
      advance st;
      true
  | _ -> false

(* Verbs come in both numbers: SEND / SENDS. *)
let verb_kw base = [ base; base ^ "S" ]

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

open Ast

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    if accept st (SYM "+") then lhs := Bin (Add, !lhs, parse_multiplicative st)
    else if accept st (SYM "-") then lhs := Bin (Sub, !lhs, parse_multiplicative st)
    else continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_atom st) in
  let continue = ref true in
  while !continue do
    if accept st (SYM "*") then lhs := Bin (Mul, !lhs, parse_atom st)
    else if accept st (SYM "/") then lhs := Bin (Div, !lhs, parse_atom st)
    else if accept st (KW "MOD") then lhs := Bin (Mod, !lhs, parse_atom st)
    else continue := false
  done;
  !lhs

and parse_atom st =
  match peek st with
  | Some (INT n) ->
      advance st;
      Int n
  | Some (FLOAT f) ->
      advance st;
      Float f
  | Some (IDENT v) ->
      advance st;
      Var v
  | Some (SYM "(") ->
      advance st;
      let e = parse_expr st in
      expect st (SYM ")");
      e
  | Some (SYM "-") ->
      advance st;
      (match parse_atom st with
      | Int n -> Int (-n)
      | Float f -> Float (-.f)
      | e -> Bin (Sub, Int 0, e))
  | _ -> error st "expected expression"

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)

let cmp_of_sym = function
  | "=" -> Some Eq
  | "<>" -> Some Ne
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None

let rec parse_pred st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while accept st (KW "OR") do
    lhs := Or (!lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while accept st (KW "AND") do
    lhs := And (!lhs, parse_not st)
  done;
  !lhs

and parse_not st =
  if accept st (KW "NOT") then Not (parse_not st) else parse_pred_atom st

and parse_pred_atom st =
  match peek st with
  | Some (KW "TRUE") ->
      advance st;
      True
  | Some (KW "FALSE") ->
      advance st;
      False
  | Some (SYM "(") -> (
      (* Could be a parenthesized predicate or a parenthesized expression
         beginning a comparison; try predicate first and backtrack. *)
      let saved = st.pos in
      advance st;
      match (try Some (parse_pred st) with Parse_error _ -> None) with
      | Some p
        when accept st (SYM ")")
             && (match peek st with
                | Some (SYM s) -> cmp_of_sym s = None
                | Some (KW ("MOD" | "DIVIDES")) -> false
                | _ -> true) ->
          p
      | _ ->
          st.pos <- saved;
          parse_comparison st)
  | _ -> parse_comparison st

and parse_comparison st =
  let lhs = parse_expr st in
  match peek st with
  | Some (SYM s) when cmp_of_sym s <> None ->
      advance st;
      let op = Option.get (cmp_of_sym s) in
      Cmp (op, lhs, parse_expr st)
  | Some (KW "DIVIDES") ->
      advance st;
      Divides (lhs, parse_expr st)
  | _ -> error st "expected comparison operator"

(* ------------------------------------------------------------------ *)
(* Task sets                                                           *)

let parse_tasks st =
  if accept st (KW "ALL") then begin
    expect st (KW "TASKS");
    match peek st with
    | Some (IDENT v) ->
        advance st;
        All (Some v)
    | _ -> All None
  end
  else if accept st (KW "TASKS") then begin
    match peek st with
    | Some (IDENT v) ->
        advance st;
        expect st (KW "SUCH");
        expect st (KW "THAT");
        Group { var = v; pred = parse_pred st }
    | _ -> error st "expected task variable after TASKS"
  end
  else if accept st (KW "TASK") then Single (parse_expr st)
  else error st "expected task set"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let rec parse_stmt st =
  match peek st with
  | Some (KW "FOR") ->
      advance st;
      if accept st (KW "EACH") then begin
        let var =
          match peek st with
          | Some (IDENT v) ->
              advance st;
              v
          | _ -> error st "expected loop variable"
        in
        expect st (KW "IN");
        expect st (SYM "{");
        let first = parse_expr st in
        expect st (SYM ",");
        expect st ELLIPSIS;
        expect st (SYM ",");
        let last = parse_expr st in
        expect st (SYM "}");
        let body = parse_block st in
        For_each { var; first; last; body }
      end
      else begin
        let count = parse_expr st in
        expect st (KW "REPETITIONS");
        let body = parse_block st in
        For { count; body }
      end
  | Some (KW "IF") ->
      advance st;
      let cond = parse_pred st in
      expect st (KW "THEN");
      let then_ = parse_block st in
      let else_ = if accept st (KW "ELSE") then parse_block st else [] in
      If { cond; then_; else_ }
  | _ -> parse_task_stmt st

and parse_block st =
  expect st (SYM "{");
  let body = parse_seq st in
  expect st (SYM "}");
  body

and parse_seq st =
  let first = parse_stmt st in
  let rec more acc =
    if accept st (KW "THEN") then more (parse_stmt st :: acc) else List.rev acc
  in
  more [ first ]

and parse_tag st =
  if accept st (KW "USING") then
    if accept st (KW "ANY") then begin
      expect st (KW "TAG");
      -1
    end
    else begin
      expect st (KW "TAG");
      match peek st with
      | Some (INT n) ->
          advance st;
          n
      | _ -> error st "expected tag number"
    end
  else 0

and parse_task_stmt st =
  let subject = parse_tasks st in
  let async = accept_kw st [ "ASYNCHRONOUSLY" ] in
  if accept_kw st (verb_kw "SEND") then begin
    expect st (KW "A");
    let bytes = parse_expr st in
    expect st (KW "BYTE");
    expect st (KW "MESSAGE");
    expect st (KW "TO");
    if accept st (KW "ALL") then begin
      expect st (KW "OTHER");
      expect st (KW "TASKS");
      if async then error st "all-to-all exchange cannot be asynchronous";
      Alltoall { tasks = subject; bytes }
    end
    else begin
      expect st (KW "TASK");
      let dst = parse_expr st in
      let tag = parse_tag st in
      let implicit_recv =
        if accept st (KW "WITH") then begin
          expect st (KW "NO");
          expect st (KW "IMPLICIT");
          expect st (KW "RECEIVE");
          false
        end
        else true
      in
      Send { src = subject; async; bytes; dst; tag; implicit_recv }
    end
  end
  else if accept_kw st (verb_kw "RECEIVE") then begin
    expect st (KW "A");
    let bytes = parse_expr st in
    expect st (KW "BYTE");
    expect st (KW "MESSAGE");
    expect st (KW "FROM");
    expect st (KW "TASK");
    let src = parse_expr st in
    let tag = parse_tag st in
    Receive { dst = subject; async; bytes; src; tag }
  end
  else if async then error st "ASYNCHRONOUSLY must precede SEND or RECEIVE"
  else if accept_kw st (verb_kw "AWAIT") then begin
    expect st (KW "COMPLETION");
    Await subject
  end
  else if accept_kw st (verb_kw "SYNCHRONIZE") then Sync subject
  else if accept_kw st (verb_kw "MULTICAST") then begin
    expect st (KW "A");
    let bytes = parse_expr st in
    expect st (KW "BYTE");
    expect st (KW "MESSAGE");
    expect st (KW "TO");
    let dst = parse_tasks st in
    Multicast { src = subject; bytes; dst }
  end
  else if accept_kw st (verb_kw "REDUCE") then begin
    expect st (KW "A");
    let bytes = parse_expr st in
    expect st (KW "BYTE");
    expect st (KW "MESSAGE");
    expect st (KW "TO");
    let dst = parse_tasks st in
    Reduce { src = subject; bytes; dst }
  end
  else if accept_kw st (verb_kw "EXCHANGE") then
    parse_neighbor st ~subject ~gather:false
  else if accept_kw st (verb_kw "GATHER") then
    parse_neighbor st ~subject ~gather:true
  else if accept_kw st (verb_kw "COMPUTE") then begin
    expect st (KW "FOR");
    let usecs = parse_expr st in
    expect st (KW "MICROSECONDS");
    Compute { tasks = subject; usecs }
  end
  else if accept_kw st (verb_kw "LOG") then begin
    let agg =
      if accept st (KW "THE") then begin
        let a =
          match peek st with
          | Some (KW "MEAN") -> Mean
          | Some (KW "MEDIAN") -> Median
          | Some (KW "MINIMUM") -> Minimum
          | Some (KW "MAXIMUM") -> Maximum
          | _ -> error st "expected MEAN, MEDIAN, MINIMUM or MAXIMUM"
        in
        advance st;
        expect st (KW "OF");
        Some a
      end
      else None
    in
    (match peek st with
    | Some (IDENT "elapsed_usecs") -> advance st
    | _ -> error st "expected elapsed_usecs");
    expect st (KW "AS");
    match peek st with
    | Some (STRING label) ->
        advance st;
        Log { tasks = subject; agg; label }
    | _ -> error st "expected string label"
  end
  else if accept_kw st (verb_kw "RESET") then begin
    expect st (KW "THEIR");
    expect st (KW "COUNTERS");
    Reset subject
  end
  else error st "expected a verb (SEND, RECEIVE, AWAIT, SYNCHRONIZE, ...)"

(* EXCHANGE .. WITH NEIGHBORS AT OFFSETS o1, o2, ...  /
   GATHER .. FROM NEIGHBORS AT OFFSETS o1, o2, ... *)
and parse_neighbor st ~subject ~gather =
  expect st (KW "A");
  let bytes = parse_expr st in
  expect st (KW "BYTE");
  expect st (KW "MESSAGE");
  expect st (KW (if gather then "FROM" else "WITH"));
  expect st (KW "NEIGHBORS");
  expect st (KW "AT");
  expect st (KW "OFFSETS");
  let offset () =
    match peek st with
    | Some (INT o) when o > 0 ->
        advance st;
        o
    | _ -> error st "expected a positive neighbor offset"
  in
  let offsets = ref [ offset () ] in
  while accept st (SYM ",") do
    offsets := offset () :: !offsets
  done;
  Neighbor { tasks = subject; bytes; offsets = List.rev !offsets; gather }

let make_state input =
  let toks, lns = lex input in
  { toks; lns; pos = 0 }

let stmts input =
  let st = make_state input in
  if Array.length st.toks = 0 then []
  else begin
    let body = parse_seq st in
    if st.pos < Array.length st.toks then error st "trailing input";
    body
  end

(* Comments are stripped by the lexer; recover them textually so that
   program round-trips preserve headers. *)
let comments_of input =
  String.split_on_char '\n' input
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if String.length line > 0 && line.[0] = '#' then
           Some (String.trim (String.sub line 1 (String.length line - 1)))
         else None)

let program input = { comments = comments_of input; body = stmts input }
