(** Compilation of coNCePTuaL programs to executable simulator programs —
    the analogue of the real coNCePTuaL compiler's C+MPI backend.

    Task groups appearing in collective statements are realized as MPI
    communicators created once at startup ([MPI_Comm_split] over the
    world), after which the program body runs with all peers expressed as
    absolute ranks.  Group predicates used by collectives must therefore
    not reference loop variables. *)

type result = {
  outcome : Mpisim.Engine.outcome;
  logs : (string * (int * float) list) list;
      (** label -> per-rank logged values (elapsed microseconds), in rank
          order *)
}

exception Lower_error of string

(** [compile ~nranks p] — the simulator program for one rank.  Fails fast
    (before running) on statically detectable errors such as a [Multicast]
    whose source selects several tasks. *)
val compile : nranks:int -> Ast.program -> Mpisim.Mpi.ctx -> unit

(** [run ?net ?hooks ~nranks p] — compile and simulate, collecting logs.
    [?fault] and the watchdog budgets are forwarded to the simulator, so
    generated benchmarks can be validated under perturbed conditions. *)
val run :
  ?net:Mpisim.Netmodel.t ->
  ?hooks:Mpisim.Hooks.t list ->
  ?fault:Mpisim.Fault.t ->
  ?max_events:int ->
  ?max_virtual_time:float ->
  ?coll_alg:Mpisim.Coll_alg.t ->
  ?obs:Obs.Sink.t ->
  nranks:int ->
  Ast.program ->
  result
