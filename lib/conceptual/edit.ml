open Ast

let scale_expr_float factor e =
  match e with
  | Float f -> Float (f *. factor)
  | Int n -> Float (float_of_int n *. factor)
  | e -> Bin (Mul, e, Float factor)

let scale_expr_bytes factor e =
  match e with
  | Int n ->
      let scaled = int_of_float (Float.round (float_of_int n *. factor)) in
      Int (if n > 0 then max 1 scaled else scaled)
  | e -> Bin (Mul, e, Float factor)

let scale_compute factor p =
  if factor < 0. then invalid_arg "Edit.scale_compute: negative factor";
  map_stmts
    (function
      | Compute r -> Compute { r with usecs = scale_expr_float factor r.usecs }
      | s -> s)
    p

let scale_messages factor p =
  if factor < 0. then invalid_arg "Edit.scale_messages: negative factor";
  map_stmts
    (function
      | Send r -> Send { r with bytes = scale_expr_bytes factor r.bytes }
      | Receive r -> Receive { r with bytes = scale_expr_bytes factor r.bytes }
      | Multicast r -> Multicast { r with bytes = scale_expr_bytes factor r.bytes }
      | Reduce r -> Reduce { r with bytes = scale_expr_bytes factor r.bytes }
      | Alltoall r -> Alltoall { r with bytes = scale_expr_bytes factor r.bytes }
      | Neighbor r -> Neighbor { r with bytes = scale_expr_bytes factor r.bytes }
      | s -> s)
    p

let rec stmt_usecs = function
  | Compute { usecs; _ } -> ( try eval_float [] usecs with Eval_error _ -> 0.)
  | For { count; body } ->
      let n = try eval_int [] count with Eval_error _ -> 0 in
      float_of_int n *. body_usecs body
  | For_each { first; last; body; _ } -> (
      try
        let a = eval_int [] first and b = eval_int [] last in
        float_of_int (max 0 (b - a + 1)) *. body_usecs body
      with Eval_error _ -> 0.)
  | If { then_; else_; _ } -> Float.max (body_usecs then_) (body_usecs else_)
  | Send _ | Receive _ | Await _ | Sync _ | Multicast _ | Reduce _ | Alltoall _
  | Neighbor _ | Log _ | Reset _ ->
      0.

and body_usecs body = List.fold_left (fun acc s -> acc +. stmt_usecs s) 0. body

let static_compute_usecs (p : program) = body_usecs p.body
