open Ast

type result = {
  outcome : Mpisim.Engine.outcome;
  logs : (string * (int * float) list) list;
}

exception Lower_error of string

(* ------------------------------------------------------------------ *)
(* Static analysis: the task groups each collective statement uses.     *)

(* Group membership in collectives is evaluated in the empty environment;
   a loop-variable-dependent group would make the communicator set
   unbounded. *)
let static_members ~nranks tasks =
  try members tasks [] ~nranks
  with Eval_error msg ->
    raise
      (Lower_error
         ("collective task group must not depend on loop variables: " ^ msg))

(* All member lists needed as communicators, in deterministic order of
   first appearance. *)
let collect_groups ~nranks (p : program) =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let whole_world = List.init nranks Fun.id in
  let note ms =
    if ms = [] then raise (Lower_error "collective over an empty task group");
    if List.length ms > 1 && ms <> whole_world && not (Hashtbl.mem seen ms)
    then begin
      Hashtbl.add seen ms ();
      out := ms :: !out
    end
  in
  let reduce_groups src dst =
    let s = static_members ~nranks src and d = static_members ~nranks dst in
    if s = [] || d = [] then raise (Lower_error "collective over an empty task group");
    if s = d then note s
    else begin
      match d with
      | [ root ] -> note (List.sort_uniq compare (root :: s))
      | d0 :: _ ->
          note (List.sort_uniq compare (d0 :: s));
          note d
      | [] -> assert false
    end
  in
  let visit () s =
    match s with
    | Sync t | Alltoall { tasks = t; _ } | Neighbor { tasks = t; _ } ->
        note (static_members ~nranks t)
    | Multicast { src; dst; _ } -> (
        match static_members ~nranks src with
        | [ root ] ->
            note (List.sort_uniq compare (root :: static_members ~nranks dst))
        | _ -> raise (Lower_error "MULTICAST source must select exactly one task"))
    | Reduce { src; dst; _ } -> reduce_groups src dst
    | Send _ | Receive _ | Await _ | Compute _ | Log _ | Reset _ | For _
    | For_each _ | If _ ->
        ()
  in
  fold_stmts visit () p;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Call sites: one synthetic site per static statement position, so a
   re-trace of the generated benchmark compresses as well as the
   original. *)

let site_table = Hashtbl.create 64

let site_of path =
  match Hashtbl.find_opt site_table path with
  | Some s -> s
  | None ->
      let s = Util.Callsite.synthetic ("ncptl:" ^ path) in
      Hashtbl.replace site_table path s;
      s

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

type rank_exec = {
  ctx : Mpisim.Mpi.ctx;
  nranks : int;
  comm_of_group : (int list, Mpisim.Comm.t) Hashtbl.t;
  mutable outstanding : Mpisim.Call.request list; (* reverse post order *)
  mutable reset_time : float;
  logs : ((string * agg option) * int * float) list ref; (* shared across ranks *)
}

let comm_for x ms =
  match ms with
  | [] -> raise (Lower_error "empty task group")
  | _ when List.length ms = x.nranks -> x.ctx.world
  | _ -> (
      match Hashtbl.find_opt x.comm_of_group ms with
      | Some c -> c
      | None -> raise (Lower_error "internal: communicator for group not created"))

let local_rank comm world =
  match Mpisim.Comm.local_of_world comm world with
  | Some l -> l
  | None -> raise (Lower_error "internal: rank not in group communicator")

let bytes_of env e =
  let b = eval_int env e in
  if b < 0 then raise (Lower_error "negative message size") else b

let rec exec_stmt x env path s =
  let r = x.ctx.rank in
  let nranks = x.nranks in
  let site = site_of path in
  let bind tasks = match binder tasks with Some v -> fun rk -> (v, rk) :: env | None -> fun _ -> env in
  match s with
  | Send { src; async; bytes; dst; tag; implicit_recv } ->
      let benv = bind src in
      let send_tag = max 0 tag in
      let recv_tag = if tag < 0 then Mpisim.Call.Any_tag else Mpisim.Call.Tag tag in
      (* Implicit receives are posted asynchronously before the send (the
         coNCePTuaL runtime's behaviour); for a synchronous SEND they are
         awaited once this task's own send has been issued, keeping ring
         exchanges deadlock-free. *)
      let implicit_reqs =
        if not implicit_recv then []
        else
          List.filter_map
            (fun t ->
              if eval_int (benv t) dst = r then
                Some
                  (Mpisim.Mpi.irecv ~site ~tag:recv_tag x.ctx
                     ~src:(Mpisim.Call.Rank t)
                     ~bytes:(bytes_of (benv t) bytes))
              else None)
            (members src env ~nranks)
      in
      if mem src env ~rank:r ~nranks then begin
        let env' = benv r in
        let d = eval_int env' dst in
        if d < 0 || d >= nranks then
          raise (Lower_error (Printf.sprintf "send to task %d outside 0..%d" d (nranks - 1)));
        let b = bytes_of env' bytes in
        if async then
          x.outstanding <-
            Mpisim.Mpi.isend ~site ~tag:send_tag x.ctx ~dst:d ~bytes:b :: x.outstanding
        else Mpisim.Mpi.send ~site ~tag:send_tag x.ctx ~dst:d ~bytes:b
      end;
      if async then
        x.outstanding <- List.rev_append implicit_reqs x.outstanding
      else if implicit_reqs <> [] then
        ignore (Mpisim.Mpi.waitall ~site x.ctx implicit_reqs)
  | Receive { dst; async; bytes; src; tag } ->
      if mem dst env ~rank:r ~nranks then begin
        let env' = (bind dst) r in
        let s_rank = eval_int env' src in
        let b = bytes_of env' bytes in
        let recv_tag = if tag < 0 then Mpisim.Call.Any_tag else Mpisim.Call.Tag tag in
        if async then
          x.outstanding <-
            Mpisim.Mpi.irecv ~site ~tag:recv_tag x.ctx ~src:(Mpisim.Call.Rank s_rank)
              ~bytes:b
            :: x.outstanding
        else
          ignore
            (Mpisim.Mpi.recv ~site ~tag:recv_tag x.ctx ~src:(Mpisim.Call.Rank s_rank)
               ~bytes:b)
      end
  | Await t ->
      if mem t env ~rank:r ~nranks then begin
        (match x.outstanding with
        | [] -> ()
        | reqs ->
            ignore (Mpisim.Mpi.waitall ~site x.ctx (List.rev reqs));
            x.outstanding <- [])
      end
  | Sync t ->
      let ms = static_members ~nranks t in
      if List.mem r ms then
        if List.length ms = 1 then ()
        else Mpisim.Mpi.barrier ~site ~comm:(comm_for x ms) x.ctx
  | Multicast { src; bytes; dst } -> (
      match static_members ~nranks src with
      | [ root ] ->
          let ms =
            List.sort_uniq compare (root :: static_members ~nranks dst)
          in
          if List.mem r ms && List.length ms > 1 then begin
            let comm = comm_for x ms in
            Mpisim.Mpi.bcast ~site ~comm x.ctx ~root:(local_rank comm root)
              ~bytes:(bytes_of env bytes)
          end
      | _ -> raise (Lower_error "MULTICAST source must select exactly one task"))
  | Reduce { src; bytes; dst } ->
      let s_ms = static_members ~nranks src and d_ms = static_members ~nranks dst in
      let b = bytes_of env bytes in
      if s_ms = d_ms then begin
        if List.mem r s_ms && List.length s_ms > 1 then
          Mpisim.Mpi.allreduce ~site ~comm:(comm_for x s_ms) x.ctx ~bytes:b
      end
      else begin
        let d0 = List.hd d_ms in
        let up = List.sort_uniq compare (d0 :: s_ms) in
        if List.mem r up && List.length up > 1 then begin
          let comm = comm_for x up in
          Mpisim.Mpi.reduce ~site ~comm x.ctx ~root:(local_rank comm d0) ~bytes:b
        end;
        if List.length d_ms > 1 && List.mem r d_ms then begin
          let comm = comm_for x d_ms in
          Mpisim.Mpi.bcast ~site ~comm x.ctx ~root:(local_rank comm d0) ~bytes:b
        end
      end
  | Alltoall { tasks = t; bytes } ->
      let ms = static_members ~nranks t in
      if List.mem r ms && List.length ms > 1 then
        Mpisim.Mpi.alltoall ~site ~comm:(comm_for x ms) x.ctx
          ~bytes_per_pair:(bytes_of env bytes)
  | Neighbor { tasks = t; bytes; offsets; gather } ->
      let ms = static_members ~nranks t in
      let q = List.length ms in
      if List.mem r ms && q > 1 then begin
        let comm = comm_for x ms in
        let lr = local_rank comm r in
        let b = bytes_of env bytes in
        (* Offsets are positions within the group, applied cyclically to
           this task's position; every member applies the same offsets, so
           the engine sees an isomorphic (stencil) neighborhood. *)
        let neighbors =
          List.filter_map
            (fun o ->
              let o = ((o mod q) + q) mod q in
              if o = 0 then None else Some ((lr + o) mod q))
            offsets
          |> List.sort_uniq compare |> Array.of_list
        in
        if Array.length neighbors > 0 then
          if gather then
            Mpisim.Mpi.neighbor_allgather ~site ~comm x.ctx ~neighbors ~bytes:b
          else
            Mpisim.Mpi.neighbor_alltoall ~site ~comm x.ctx ~neighbors
              ~bytes_per_neighbor:b
      end
  | Compute { tasks = t; usecs } ->
      if mem t env ~rank:r ~nranks then begin
        let env' = (bind t) r in
        let us = eval_float env' usecs in
        if us > 0. then Mpisim.Mpi.compute ~site x.ctx (us *. 1e-6)
      end
  | For { count; body } ->
      let n = eval_int env count in
      for i = 1 to n do
        ignore i;
        exec_body x env path body
      done
  | For_each { var; first; last; body } ->
      let a = eval_int env first and b = eval_int env last in
      for i = a to b do
        exec_body x ((var, i) :: env) path body
      done
  | If { cond; then_; else_ } ->
      if eval_pred env cond then exec_body x env (path ^ "t") then_
      else exec_body x env (path ^ "e") else_
  | Log { tasks = t; agg; label } ->
      if mem t env ~rank:r ~nranks then begin
        let now = Mpisim.Mpi.wtime x.ctx in
        x.logs := ((label, agg), r, (now -. x.reset_time) *. 1e6) :: !(x.logs)
      end
  | Reset t ->
      if mem t env ~rank:r ~nranks then x.reset_time <- Mpisim.Mpi.wtime x.ctx

and exec_body x env path body =
  List.iteri (fun i s -> exec_stmt x env (Printf.sprintf "%s.%d" path i) s) body

let compile_with_logs ~nranks (p : program) logs =
  let groups = collect_groups ~nranks p in
  fun (ctx : Mpisim.Mpi.ctx) ->
    let comm_of_group = Hashtbl.create 16 in
    (* Deterministic prelude: one split per group, executed by every rank. *)
    List.iteri
      (fun i ms ->
        let color = if List.mem ctx.rank ms then 1 else 0 in
        let c =
          Mpisim.Mpi.comm_split
            ~site:(site_of (Printf.sprintf "prelude.%d" i))
            ctx ~color ~key:ctx.rank
        in
        if color = 1 then Hashtbl.replace comm_of_group ms c)
      groups;
    let x =
      { ctx; nranks; comm_of_group; outstanding = []; reset_time = 0.; logs }
    in
    exec_body x [] "" p.body;
    (match x.outstanding with
    | [] -> ()
    | reqs -> ignore (Mpisim.Mpi.waitall x.ctx (List.rev reqs)));
    Mpisim.Mpi.finalize ~site:(site_of "finalize") ctx

let compile ~nranks p = compile_with_logs ~nranks p (ref [])

let aggregate agg values =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  match agg with
  | Mean -> List.fold_left ( +. ) 0. sorted /. float_of_int (max 1 n)
  | Median -> if n = 0 then 0. else List.nth sorted (n / 2)
  | Minimum -> ( match sorted with [] -> 0. | v :: _ -> v)
  | Maximum -> List.fold_left Float.max neg_infinity (0. :: sorted)

let run ?net ?(hooks = []) ?fault ?max_events ?max_virtual_time ?coll_alg ?obs
    ~nranks p =
  let logs = ref [] in
  let prog = compile_with_logs ~nranks p logs in
  let outcome =
    Mpisim.Mpi.run ~hooks ?net ?fault ?max_events ?max_virtual_time ?coll_alg
      ?obs ~nranks prog
  in
  let keys =
    List.rev !logs |> List.map (fun (k, _, _) -> k) |> List.sort_uniq compare
  in
  let series ((label, agg) as key) =
    let raw =
      List.rev !logs
      |> List.filter_map (fun (k, r, v) -> if k = key then Some (r, v) else None)
    in
    let per_rank =
      match agg with
      | None -> raw
      | Some a ->
          raw
          |> List.map fst |> List.sort_uniq compare
          |> List.map (fun r ->
                 (r, aggregate a (List.filter_map (fun (r', v) -> if r = r' then Some v else None) raw)))
    in
    (label, List.sort compare per_rank)
  in
  { outcome; logs = List.map series keys }
